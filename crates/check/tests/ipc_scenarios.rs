//! Schedule-exploration scenarios for the multi-process backend
//! (`mpf-ipc`), run same-process via [`IpcMpf::attach_view`]: each logical
//! process drives its own mapping of the shared region (own process slot,
//! own base address), so the explored interleavings exercise the real
//! in-region locks, futex sequence words, and lock-free pools.
//!
//! The genuinely cross-address-space variants of these scenarios live in
//! `crates/ipc/tests/cross_process.rs`; here the scheduler can permute the
//! racy regions deterministically instead of hoping the OS happens to.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use mpf::{MpfConfig, MpfError, Protocol};
use mpf_check::{explore_dfs, explore_random, Case, DeathPlan, ExploreOpts};
use mpf_ipc::IpcMpf;

type Proc = Box<dyn FnOnce() + Send>;

/// Region names must be fresh per schedule: the previous schedule's
/// region is unlinked when its last view drops, but a monotonic counter
/// keeps any straggler from colliding.
fn region(tag: &str) -> IpcMpf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let cfg = MpfConfig::new(4, 4)
        .with_block_payload(32)
        .with_total_blocks(16)
        .with_max_messages(8)
        .with_max_connections(8);
    IpcMpf::create(&format!("chk-{tag}-{}-{n}", std::process::id()), &cfg).expect("create region")
}

/// The FCFS-obligation leak, ipc edition: the last FCFS receiver's view
/// closes while a broadcast view keeps the conversation alive, racing the
/// sends.  Every schedule must end with the queue drained and all 16
/// blocks free (before the fix, schedules that enqueued before the close
/// left the messages owed to an empty receiver class forever).
fn ipc_leak_case() -> Case {
    let a = region("leak");
    let b = a.attach_view().expect("view b");
    let c = a.attach_view().expect("view c");
    let total = a.free_blocks();
    let tx = a.open_send("leak").expect("open send");
    let rf = b.open_receive("leak", Protocol::Fcfs).expect("open fcfs");
    let rb = c
        .open_receive("leak", Protocol::Broadcast)
        .expect("open bcast");
    let a = Arc::new(a);
    let checker = Arc::clone(&a);
    let sender = Box::new(move || {
        a.message_send(tx, b"first").expect("send 1");
        a.message_send(tx, b"second").expect("send 2");
    }) as Proc;
    let fcfs_closer = Box::new(move || {
        b.close_receive(rf).expect("close fcfs");
    }) as Proc;
    let bcast_reader = Box::new(move || {
        let mut buf = [0u8; 32];
        for _ in 0..2 {
            c.message_receive(rb, &mut buf).expect("bcast recv");
        }
    }) as Proc;
    Case {
        procs: vec![sender, fcfs_closer, bcast_reader],
        death: None,
        check: Box::new(move || {
            if checker.free_blocks() != total {
                return Err(format!(
                    "ipc obligation leak: {} free of {total}",
                    checker.free_blocks()
                ));
            }
            if checker.live_lnvcs() != 1 {
                return Err("conversation should still be alive".into());
            }
            Ok(())
        }),
    }
}

#[test]
fn ipc_fcfs_obligation_leak_dfs() {
    let opts = ExploreOpts::new("ipc-fcfs-obligation-leak").max_schedules(150);
    explore_dfs(&opts, ipc_leak_case).assert_ok();
}

#[test]
fn ipc_fcfs_obligation_leak_random() {
    let opts = ExploreOpts::new("ipc-fcfs-obligation-leak-pct").max_schedules(150);
    explore_random(&opts, 0x1BC, ipc_leak_case).assert_ok();
}

/// Two FCFS views race one message through the real in-region claim path:
/// exactly one may get it, under every explored interleaving.
#[test]
fn ipc_fcfs_exactly_once_across_views() {
    let make = || {
        let a = region("once");
        let b = a.attach_view().expect("view b");
        let c = a.attach_view().expect("view c");
        let total = a.free_blocks();
        let tx = a.open_send("once").expect("open send");
        let r1 = b.open_receive("once", Protocol::Fcfs).expect("open r1");
        let r2 = c.open_receive("once", Protocol::Fcfs).expect("open r2");
        a.message_send(tx, b"only").expect("seed send");
        let got = Arc::new(AtomicUsize::new(0));
        let a = Arc::new(a);
        let checker = Arc::clone(&a);
        let racer = |view: IpcMpf, id| {
            let got = Arc::clone(&got);
            Box::new(move || {
                let mut buf = [0u8; 32];
                if view
                    .try_message_receive(id, &mut buf)
                    .expect("try recv")
                    .is_some()
                {
                    got.fetch_add(1, Ordering::Relaxed);
                }
            }) as Proc
        };
        let procs = vec![racer(b, r1), racer(c, r2)];
        let got = Arc::clone(&got);
        Case {
            procs,
            death: None,
            check: Box::new(move || {
                let n = got.load(Ordering::Relaxed);
                if n != 1 {
                    return Err(format!("FCFS message delivered {n} times, want exactly 1"));
                }
                if checker.free_blocks() != total {
                    return Err("blocks leaked after exactly-once delivery".into());
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("ipc-fcfs-exactly-once").max_schedules(200);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0x10CE, make).assert_ok();
}

/// Death mid-critical-section: the victim seizes the conversation's
/// in-region lock through its own view, and the scheduler may kill it at
/// any decision point — including while the lock is held.  The survivor's
/// next acquire must consult the liveness oracle, break the dead holder,
/// poison the conversation, and surface `PeerDied`; its close path must
/// still run on the poisoned conversation and free every block.  Before
/// modeled death this path was reachable only by actually SIGKILLing an
/// OS process mid-send (`mpf-soak`); here every kill point is enumerated.
///
/// `when_poisoned` is called once per schedule in which the survivor
/// observed `PeerDied` — the caller proves the lock-held kill point was
/// actually enumerated (and not just survived schedules).
fn ipc_death_mid_lock_case(when_poisoned: Arc<dyn Fn() + Send + Sync>) -> Case {
    let a = region("death");
    let v = a.attach_view().expect("victim view");
    let total = a.free_blocks();
    let tx = a.open_send("mort").expect("open send");
    let rx = a.open_receive("mort", Protocol::Fcfs).expect("open recv");
    // A second conversation whose only purpose is to give the victim a
    // *parked* decision point while it holds the first conversation's
    // lock: hooked processes park only at decision points (pre-acquire,
    // post-release), so without a nested acquire the victim could never
    // be caught mid-critical-section.
    let txb = a.open_send("mort-aux").expect("open aux send");
    let a = Arc::new(a);
    let v = Arc::new(v);
    let checker = Arc::clone(&a);
    let died = Arc::new(AtomicBool::new(false));
    let saw_poison = Arc::new(AtomicBool::new(false));
    // Victim (process 0, mortal): seize the conversation's lock, then
    // acquire a second one — parking, with the first lock held, at the
    // nested acquire's decision point.  A kill there dies holding the
    // lock: the in-region lock is not RAII, so unwinding the thread
    // releases nothing, exactly like a real SIGKILL.  Every call
    // tolerates `UnknownLnvc` — in schedules where the survivor runs to
    // completion first, its closes delete the conversations and the
    // victim's handles go stale.
    let victim = {
        let v = Arc::clone(&v);
        Box::new(move || {
            if v.debug_seize_lnvc_lock(tx).is_ok() {
                if v.debug_seize_lnvc_lock(txb).is_ok() {
                    let _ = v.debug_release_lnvc_lock(txb);
                }
                let _ = v.debug_release_lnvc_lock(tx);
            }
        }) as Proc
    };
    // Survivor (process 1): one send/receive round-trip, accepting
    // PeerDied wherever the poison surfaces, then production recovery —
    // close both connections (close works on poisoned conversations; the
    // last one out deletes the conversation and frees any queued blocks).
    let survivor = {
        let a = Arc::clone(&a);
        let saw_poison = Arc::clone(&saw_poison);
        Box::new(move || {
            let mut buf = [0u8; 32];
            match a.message_send(tx, b"ping") {
                Ok(()) => match a.try_message_receive(rx, &mut buf) {
                    Ok(got) => assert!(got.is_some(), "sent message must be queued"),
                    Err(MpfError::PeerDied { .. }) => saw_poison.store(true, Ordering::Relaxed),
                    Err(e) => panic!("recv after send: {e:?}"),
                },
                Err(MpfError::PeerDied { .. }) => saw_poison.store(true, Ordering::Relaxed),
                Err(e) => panic!("send: {e:?}"),
            }
            a.close_send(tx)
                .expect("close send on poisoned conversation");
            a.close_receive(rx)
                .expect("close recv on poisoned conversation");
            a.close_send(txb).expect("close aux send");
        }) as Proc
    };
    let on_death = {
        let died = Arc::clone(&died);
        let v = Arc::clone(&v);
        Box::new(move |_tid: usize| {
            // Hook-free by contract: two atomic stores.  Abandoning the
            // slot flips the liveness oracle so survivors see a corpse.
            died.store(true, Ordering::Relaxed);
            v.debug_abandon_slot();
        })
    };
    Case {
        procs: vec![victim, survivor],
        death: Some(DeathPlan {
            victims: vec![0],
            on_death,
        }),
        check: Box::new(move || {
            if saw_poison.load(Ordering::Relaxed) {
                if !died.load(Ordering::Relaxed) {
                    return Err("observed PeerDied but nobody was killed".into());
                }
                when_poisoned();
            }
            if checker.free_blocks() != total {
                return Err(format!(
                    "block leak after modeled death: {} free of {total}",
                    checker.free_blocks()
                ));
            }
            if checker.live_lnvcs() != 0 {
                return Err("conversation must be gone after the survivor closes".into());
            }
            Ok(())
        }),
    }
}

#[test]
fn ipc_death_mid_critical_section_dfs() {
    let poisoned_runs = Arc::new(AtomicUsize::new(0));
    let bump: Arc<dyn Fn() + Send + Sync> = {
        let p = Arc::clone(&poisoned_runs);
        Arc::new(move || {
            p.fetch_add(1, Ordering::Relaxed);
        })
    };
    let opts = ExploreOpts::new("ipc-death-mid-lock").max_schedules(400);
    explore_dfs(&opts, || ipc_death_mid_lock_case(Arc::clone(&bump))).assert_ok();
    assert!(
        poisoned_runs.load(Ordering::Relaxed) > 0,
        "DFS never enumerated a kill-while-lock-held schedule"
    );
}

#[test]
fn ipc_death_mid_critical_section_random() {
    let poisoned_runs = Arc::new(AtomicUsize::new(0));
    let bump: Arc<dyn Fn() + Send + Sync> = {
        let p = Arc::clone(&poisoned_runs);
        Arc::new(move || {
            p.fetch_add(1, Ordering::Relaxed);
        })
    };
    let opts = ExploreOpts::new("ipc-death-mid-lock-pct").max_schedules(200);
    explore_random(&opts, 0xDEAD, || ipc_death_mid_lock_case(Arc::clone(&bump))).assert_ok();
    assert!(
        poisoned_runs.load(Ordering::Relaxed) > 0,
        "random schedules never took a kill-while-lock-held option"
    );
}

/// The acceptance path end-to-end: DFS *finds* a schedule in which the
/// poison surfaced (reported here as a deliberate check failure), and the
/// recorded choice list replays that exact schedule — kill point included
/// — reproducing the same failure.  This is the previously SIGKILL-only
/// failure mode made deterministic and replayable.
#[test]
fn ipc_death_schedule_is_replayable() {
    let make = || {
        let flagged = Arc::new(AtomicBool::new(false));
        let mark: Arc<dyn Fn() + Send + Sync> = {
            let f = Arc::clone(&flagged);
            Arc::new(move || f.store(true, Ordering::Relaxed))
        };
        let mut case = ipc_death_mid_lock_case(mark);
        let inner = case.check;
        case.check = Box::new(move || {
            inner()?;
            if flagged.load(Ordering::Relaxed) {
                return Err("poison-observed".into());
            }
            Ok(())
        });
        case
    };
    let opts = ExploreOpts::new("ipc-death-replay").max_schedules(400);
    let report = explore_dfs(&opts, make);
    let failure = report
        .failure
        .expect("DFS must reach a schedule where the survivor observes PeerDied");
    let mpf_check::FailureKind::CheckFailed(msg) = &failure.kind else {
        panic!("expected the marker check failure, got {:?}", failure.kind);
    };
    assert_eq!(msg, "poison-observed");
    let mpf_check::ScheduleId::Choices(choices) = &failure.schedule else {
        panic!("DFS failures carry choice lists");
    };
    let replayed = mpf_check::replay_choices(&opts, choices, make);
    assert!(
        matches!(replayed, Some(mpf_check::FailureKind::CheckFailed(ref m)) if m == "poison-observed"),
        "replay must re-kill at the recorded point, got {replayed:?}"
    );
}

/// Conservation under a dead sender: a message is queued from the victim's
/// own connection before exploration, and the victim may be killed before
/// it can close.  Whatever the interleaving — survivor sweeps the corpse
/// and sees poison, or drains the message first, or the victim survives
/// and closes cleanly — every payload block must return to the free list
/// and the conversation must be deletable.
fn ipc_dead_sender_case() -> Case {
    let a = region("corpse");
    let v = a.attach_view().expect("victim view");
    let total = a.free_blocks();
    let tx = v.open_send("doomed").expect("open send");
    let rx = a.open_receive("doomed", Protocol::Fcfs).expect("open recv");
    v.message_send(tx, b"last words").expect("seed send");
    let a = Arc::new(a);
    let v = Arc::new(v);
    let checker = Arc::clone(&a);
    let victim = {
        let v = Arc::clone(&v);
        Box::new(move || {
            v.close_send(tx).expect("close send");
        }) as Proc
    };
    let survivor = {
        let a = Arc::clone(&a);
        Box::new(move || {
            a.sweep_dead_peers();
            let mut buf = [0u8; 32];
            match a.try_message_receive(rx, &mut buf) {
                Ok(_) | Err(MpfError::PeerDied { .. }) => {}
                Err(e) => panic!("recv: {e:?}"),
            }
            a.close_receive(rx).expect("close recv");
        }) as Proc
    };
    let on_death = {
        let v = Arc::clone(&v);
        Box::new(move |_tid: usize| v.debug_abandon_slot())
    };
    Case {
        procs: vec![victim, survivor],
        death: Some(DeathPlan {
            victims: vec![0],
            on_death,
        }),
        check: Box::new(move || {
            // The victim may have died after the survivor's sweep; reap
            // it now (the check runs unhooked) so the corpse's send
            // connection is swept and an orphaned conversation deleted —
            // exactly what the next live process would do.
            checker.sweep_dead_peers();
            if checker.free_blocks() != total {
                return Err(format!(
                    "dead sender leaked blocks: {} free of {total}",
                    checker.free_blocks()
                ));
            }
            if checker.live_lnvcs() != 0 {
                return Err("conversation must be reclaimable after the corpse is swept".into());
            }
            Ok(())
        }),
    }
}

#[test]
fn ipc_dead_sender_conservation_dfs() {
    let opts = ExploreOpts::new("ipc-dead-sender").max_schedules(300);
    explore_dfs(&opts, ipc_dead_sender_case).assert_ok();
}

#[test]
fn ipc_dead_sender_conservation_random() {
    let opts = ExploreOpts::new("ipc-dead-sender-pct").max_schedules(150);
    explore_random(&opts, 0xC0FFE, ipc_dead_sender_case).assert_ok();
}
