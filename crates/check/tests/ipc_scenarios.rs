//! Schedule-exploration scenarios for the multi-process backend
//! (`mpf-ipc`), run same-process via [`IpcMpf::attach_view`]: each logical
//! process drives its own mapping of the shared region (own process slot,
//! own base address), so the explored interleavings exercise the real
//! in-region locks, futex sequence words, and lock-free pools.
//!
//! The genuinely cross-address-space variants of these scenarios live in
//! `crates/ipc/tests/cross_process.rs`; here the scheduler can permute the
//! racy regions deterministically instead of hoping the OS happens to.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use mpf::{MpfConfig, Protocol};
use mpf_check::{explore_dfs, explore_random, Case, ExploreOpts};
use mpf_ipc::IpcMpf;

type Proc = Box<dyn FnOnce() + Send>;

/// Region names must be fresh per schedule: the previous schedule's
/// region is unlinked when its last view drops, but a monotonic counter
/// keeps any straggler from colliding.
fn region(tag: &str) -> IpcMpf {
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let cfg = MpfConfig::new(4, 4)
        .with_block_payload(32)
        .with_total_blocks(16)
        .with_max_messages(8)
        .with_max_connections(8);
    IpcMpf::create(&format!("chk-{tag}-{}-{n}", std::process::id()), &cfg).expect("create region")
}

/// The FCFS-obligation leak, ipc edition: the last FCFS receiver's view
/// closes while a broadcast view keeps the conversation alive, racing the
/// sends.  Every schedule must end with the queue drained and all 16
/// blocks free (before the fix, schedules that enqueued before the close
/// left the messages owed to an empty receiver class forever).
fn ipc_leak_case() -> Case {
    let a = region("leak");
    let b = a.attach_view().expect("view b");
    let c = a.attach_view().expect("view c");
    let total = a.free_blocks();
    let tx = a.open_send("leak").expect("open send");
    let rf = b.open_receive("leak", Protocol::Fcfs).expect("open fcfs");
    let rb = c
        .open_receive("leak", Protocol::Broadcast)
        .expect("open bcast");
    let a = Arc::new(a);
    let checker = Arc::clone(&a);
    let sender = Box::new(move || {
        a.message_send(tx, b"first").expect("send 1");
        a.message_send(tx, b"second").expect("send 2");
    }) as Proc;
    let fcfs_closer = Box::new(move || {
        b.close_receive(rf).expect("close fcfs");
    }) as Proc;
    let bcast_reader = Box::new(move || {
        let mut buf = [0u8; 32];
        for _ in 0..2 {
            c.message_receive(rb, &mut buf).expect("bcast recv");
        }
    }) as Proc;
    Case {
        procs: vec![sender, fcfs_closer, bcast_reader],
        check: Box::new(move || {
            if checker.free_blocks() != total {
                return Err(format!(
                    "ipc obligation leak: {} free of {total}",
                    checker.free_blocks()
                ));
            }
            if checker.live_lnvcs() != 1 {
                return Err("conversation should still be alive".into());
            }
            Ok(())
        }),
    }
}

#[test]
fn ipc_fcfs_obligation_leak_dfs() {
    let opts = ExploreOpts::new("ipc-fcfs-obligation-leak").max_schedules(150);
    explore_dfs(&opts, ipc_leak_case).assert_ok();
}

#[test]
fn ipc_fcfs_obligation_leak_random() {
    let opts = ExploreOpts::new("ipc-fcfs-obligation-leak-pct").max_schedules(150);
    explore_random(&opts, 0x1BC, ipc_leak_case).assert_ok();
}

/// Two FCFS views race one message through the real in-region claim path:
/// exactly one may get it, under every explored interleaving.
#[test]
fn ipc_fcfs_exactly_once_across_views() {
    let make = || {
        let a = region("once");
        let b = a.attach_view().expect("view b");
        let c = a.attach_view().expect("view c");
        let total = a.free_blocks();
        let tx = a.open_send("once").expect("open send");
        let r1 = b.open_receive("once", Protocol::Fcfs).expect("open r1");
        let r2 = c.open_receive("once", Protocol::Fcfs).expect("open r2");
        a.message_send(tx, b"only").expect("seed send");
        let got = Arc::new(AtomicUsize::new(0));
        let a = Arc::new(a);
        let checker = Arc::clone(&a);
        let racer = |view: IpcMpf, id| {
            let got = Arc::clone(&got);
            Box::new(move || {
                let mut buf = [0u8; 32];
                if view
                    .try_message_receive(id, &mut buf)
                    .expect("try recv")
                    .is_some()
                {
                    got.fetch_add(1, Ordering::Relaxed);
                }
            }) as Proc
        };
        let procs = vec![racer(b, r1), racer(c, r2)];
        let got = Arc::clone(&got);
        Case {
            procs,
            check: Box::new(move || {
                let n = got.load(Ordering::Relaxed);
                if n != 1 {
                    return Err(format!("FCFS message delivered {n} times, want exactly 1"));
                }
                if checker.free_blocks() != total {
                    return Err("blocks leaked after exactly-once delivery".into());
                }
                Ok(())
            }),
        }
    };
    let opts = ExploreOpts::new("ipc-fcfs-exactly-once").max_schedules(200);
    explore_dfs(&opts, make).assert_ok();
    explore_random(&opts, 0x10CE, make).assert_ok();
}
