//! Schedule exploration for the `mpf-serve` control-plane handshake.
//!
//! The service layer's drain/shutdown protocol is a distributed
//! handshake over three conversations (request queue, BROADCAST control
//! plane, ack channel), and its correctness claims — every drain is
//! acked, every shutdown produces a BYE, nothing leaks — are exactly
//! the kind of thing a lucky thread schedule can fake.  This scenario
//! races a deterministic worker ([`WorkerCfg::deterministic`]: no idle
//! ticks, no clock-driven timeouts, exits only on `K_SHUTDOWN`) against
//! a controller that owns the [`Server`] and an inline [`Client`], all
//! over [`SyncTransport`] so every wait parks on the hooked waitqs the
//! cooperative scheduler controls.
//!
//! Under **every** explored interleaving the run must finish with: the
//! call answered, the drain acked by the one worker with an empty
//! residual queue, the shutdown yielding a BYE and no stragglers, and
//! the facility back to zero live conversations with all blocks free.

use std::sync::Arc;

use mpf::{Mpf, MpfConfig, ProcessId};
use mpf_check::{explore_random, Case, ExploreOpts};
use mpf_serve::{run_worker, Client, ClientCfg, Server, SyncTransport, WorkerCfg};

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

const SVC: &str = "hand";

/// One worker, one client call, then drain → resume → shutdown.
///
/// The server is anchored in setup (before any proc runs), so epoch
/// discovery succeeds on its first probe pass and nothing in the
/// scenario ever naps on the wall clock — schedules stay replayable.
fn handshake_case() -> Case {
    let cfg = MpfConfig::new(16, 8)
        .with_total_blocks(64)
        .with_block_payload(64)
        .with_max_messages(32);
    let total = cfg.total_blocks;
    let mpf = Arc::new(Mpf::init(cfg).expect("init"));

    let server_t = Arc::new(SyncTransport {
        mpf: Arc::clone(&mpf),
        pid: p(0),
    });
    let server = Server::new(server_t, SVC).expect("anchor");

    let worker = {
        let mpf = Arc::clone(&mpf);
        Box::new(move || {
            let t = SyncTransport { mpf, pid: p(1) };
            let stats = run_worker(&t, &WorkerCfg::deterministic(SVC, 1), |req| {
                let v = u32::from_le_bytes(req[..4].try_into().expect("4 bytes"));
                v.wrapping_mul(2).to_le_bytes().to_vec()
            })
            .expect("worker");
            assert_eq!(stats.served, 1, "exactly one request crosses the queue");
        }) as Box<dyn FnOnce() + Send>
    };

    let controller = {
        let mpf = Arc::clone(&mpf);
        let mut server = server;
        Box::new(move || {
            // Wait for the worker's HELLO — a broadcast sent before any
            // worker joined would be skipped (zero-receiver BROADCAST
            // turns into a stale owed command for the next joiner).
            while server.worker_count() < 1 {
                server.poll_acks(None).expect("poll_acks");
            }

            let t = Arc::new(SyncTransport { mpf, pid: p(2) });
            let mut client = Client::connect(t, ClientCfg::new(SVC, 7)).expect("connect");
            let reply = client.call(&21u32.to_le_bytes()).expect("call");
            assert_eq!(u32::from_le_bytes(reply[..4].try_into().unwrap()), 42);
            client.close();

            let d = server.drain(None).expect("drain");
            assert_eq!(d.acked, vec![1], "the worker acked the drain");
            assert!(d.timed_out.is_empty(), "no deadline, no timeouts");
            assert_eq!(d.residual, 0, "queue quiesced: {d:?}");
            assert_eq!(d.served_total, 1, "{d:?}");

            server.resume().expect("resume");

            let s = server.shutdown(None).expect("shutdown");
            assert_eq!(s.byes, vec![1], "the worker said BYE: {s:?}");
            assert!(s.stragglers.is_empty(), "{s:?}");
        }) as Box<dyn FnOnce() + Send>
    };

    Case {
        procs: vec![worker, controller],
        death: None,
        check: Box::new(move || {
            mpf.check_invariants()?;
            if mpf.live_lnvcs() != 0 {
                return Err(format!(
                    "service conversations leaked: {} still live",
                    mpf.live_lnvcs()
                ));
            }
            if mpf.free_blocks() != total {
                return Err(format!(
                    "blocks pinned after shutdown: {} free of {}",
                    mpf.free_blocks(),
                    total
                ));
            }
            Ok(())
        }),
    }
}

#[test]
fn serve_handshake_random() {
    // The handshake is deep (hundreds of hooked decisions per schedule),
    // so the budget is schedules-few but each one covers a lot of
    // protocol; the seeded sweep still varies the preemption points.
    let opts = ExploreOpts::new("serve-handshake")
        .max_schedules(24)
        .max_steps(2_000_000);
    let report = explore_random(&opts, 0x5E17E, handshake_case);
    report.assert_ok();
    assert_eq!(report.schedules, opts.budget());
}
