//! Schedule strategies: who runs next at each scheduling decision.
//!
//! A schedule is the sequence of choices the controller makes at its
//! decision points (lock acquire/release, wait/notify, pool events).  Three
//! strategies cover the harness's needs:
//!
//! * [`DfsSched`] — exhaustive bounded depth-first search.  Each run records
//!   the runnable set and the chosen index at every decision (a [`Frame`]);
//!   between runs the explorer advances the deepest frame with an untried
//!   option, so successive runs enumerate distinct interleavings without
//!   repetition.  A replayed prefix is checked against the recorded runnable
//!   sets — a mismatch means the case is nondeterministic (e.g. it consults
//!   wall-clock time or an unseeded RNG) and exploration results would be
//!   meaningless, so it is reported as a failure in its own right.
//! * [`RandomSched`] — seeded PCT-style random priorities.  Each logical
//!   process gets a random priority; the highest-priority runnable process
//!   always runs, and at each decision the winner is demoted below everyone
//!   with small probability.  This concentrates exploration on schedules
//!   with few preemptions — where most real concurrency bugs live — while
//!   staying fully deterministic per seed.
//! * [`ReplaySched`] — replays a recorded choice list (the `chosen` indices
//!   from a failing DFS run), for debugging a specific interleaving.

use mpf_shm::SmallRng;

/// Tag bit marking an option as a *kill* pseudo-option: choosing
/// `KILL_BIT | tid` vanishes logical process `tid` at this decision point
/// instead of running anyone (modeled `SIGKILL` — see
/// [`crate::DeathPlan`]).  Thread ids are tiny, so the top bit is never a
/// real tid; DFS, replay, and the recorded [`Frame`]s treat the tagged
/// value as just another opaque option, which keeps kill decisions
/// enumerable and replayable for free.
pub const KILL_BIT: usize = 1 << (usize::BITS - 1);

/// One recorded scheduling decision: the option set the controller saw
/// and which index into it was chosen.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Runnable thread ids in ascending order, followed by any
    /// [`KILL_BIT`]-tagged kill pseudo-options (also ascending).
    pub options: Vec<usize>,
    /// Index into `options` that was chosen.
    pub chosen: usize,
}

/// Depth-first enumeration with a replayable prefix.
#[derive(Debug, Default)]
pub struct DfsSched {
    /// Decisions so far.  Entries below the initial length are a prefix to
    /// replay; entries pushed during the run record fresh decisions.
    pub frames: Vec<Frame>,
    depth: usize,
    /// First divergence between a replayed frame and the actual runnable
    /// set, if any.
    pub mismatch: Option<String>,
}

impl DfsSched {
    /// A scheduler that replays `prefix` and then always picks the first
    /// runnable thread, recording every decision.
    pub fn with_prefix(prefix: Vec<Frame>) -> Self {
        Self {
            frames: prefix,
            depth: 0,
            mismatch: None,
        }
    }

    fn choose(&mut self, runnable: &[usize]) -> usize {
        let d = self.depth;
        self.depth += 1;
        if d < self.frames.len() {
            let f = &self.frames[d];
            if f.options != runnable {
                if self.mismatch.is_none() {
                    self.mismatch = Some(format!(
                        "decision {d}: recorded runnable set {:?} but got {:?} \
                         (the case is nondeterministic)",
                        f.options, runnable
                    ));
                }
                // Degrade gracefully; the explorer reports the mismatch.
                return runnable[f.chosen.min(runnable.len() - 1)];
            }
            f.options[f.chosen]
        } else {
            self.frames.push(Frame {
                options: runnable.to_vec(),
                chosen: 0,
            });
            runnable[0]
        }
    }
}

/// Advances `frames` to the next untried schedule: bump the deepest frame
/// with an untried option, dropping everything below it.  Returns `false`
/// when the whole (bounded) tree has been enumerated.
pub fn advance(frames: &mut Vec<Frame>) -> bool {
    while let Some(f) = frames.last_mut() {
        if f.chosen + 1 < f.options.len() {
            f.chosen += 1;
            return true;
        }
        frames.pop();
    }
    false
}

/// Seeded random-priority (PCT-style) scheduling.
#[derive(Debug)]
pub struct RandomSched {
    rng: SmallRng,
    /// Current priority per thread; highest runnable wins.
    prio: Vec<i64>,
    /// Next value handed out on demotion; strictly decreasing so a demoted
    /// thread lands below every other priority ever assigned.
    next_low: i64,
}

impl RandomSched {
    /// Probability that the winning thread is demoted after a decision —
    /// i.e. the chance of a preemption point.  PCT keeps this small.
    const DEMOTE_P: f64 = 0.15;

    /// Probability of taking a kill pseudo-option when one is on offer.
    /// Small for the same reason `DEMOTE_P` is: most schedules should
    /// explore deep into normal execution, with deaths sprinkled at
    /// random depths rather than dominating every run.
    const KILL_P: f64 = 0.1;

    /// A scheduler for `n_threads` logical processes, fully determined by
    /// `seed`.
    pub fn new(seed: u64, n_threads: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let prio = (0..n_threads)
            .map(|_| rng.gen_range(0..1_000_000u32) as i64)
            .collect();
        Self {
            rng,
            prio,
            next_low: -1,
        }
    }

    fn choose(&mut self, options: &[usize]) -> usize {
        // Kill pseudo-options don't have priorities; they fire with a
        // small seeded probability (and unconditionally when nobody is
        // runnable — the only remaining transition is a death).
        let kills: Vec<usize> = options
            .iter()
            .copied()
            .filter(|o| o & KILL_BIT != 0)
            .collect();
        let real: Vec<usize> = options
            .iter()
            .copied()
            .filter(|o| o & KILL_BIT == 0)
            .collect();
        if !kills.is_empty() && (real.is_empty() || self.rng.gen_bool(Self::KILL_P)) {
            let i = self.rng.gen_range(0..kills.len() as u32) as usize;
            return kills[i];
        }
        let winner = *real
            .iter()
            .max_by_key(|&&t| self.prio[t])
            .expect("option set is never empty at a decision");
        if self.rng.gen_bool(Self::DEMOTE_P) {
            self.prio[winner] = self.next_low;
            self.next_low -= 1;
        }
        winner
    }
}

/// Replays a recorded choice list; past its end, picks the first runnable.
#[derive(Debug)]
pub struct ReplaySched {
    choices: Vec<usize>,
    depth: usize,
}

impl ReplaySched {
    /// A scheduler that replays `choices` (indices into each decision's
    /// runnable set, as reported in a failure's schedule id).
    pub fn new(choices: Vec<usize>) -> Self {
        Self { choices, depth: 0 }
    }

    fn choose(&mut self, runnable: &[usize]) -> usize {
        let idx = self.choices.get(self.depth).copied().unwrap_or(0);
        self.depth += 1;
        runnable[idx.min(runnable.len() - 1)]
    }
}

/// The strategy actually plugged into the controller.
#[derive(Debug)]
pub enum Sched {
    /// Bounded exhaustive enumeration.
    Dfs(DfsSched),
    /// Seeded random priorities.
    Random(RandomSched),
    /// Replay of a recorded choice list.
    Replay(ReplaySched),
}

impl Sched {
    /// Picks the next option (a runnable thread id, or a [`KILL_BIT`]
    /// kill pseudo-option) from `options` — never empty, runnable ids
    /// ascending first, kill options ascending after them.
    pub fn choose(&mut self, options: &[usize]) -> usize {
        match self {
            Sched::Dfs(s) => s.choose(options),
            Sched::Random(s) => s.choose(options),
            Sched::Replay(s) => s.choose(options),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_enumerates_binary_tree() {
        // Two decisions with two options each -> four schedules.
        let mut frames = Vec::new();
        let mut seen = Vec::new();
        loop {
            let mut s = DfsSched::with_prefix(std::mem::take(&mut frames));
            let a = s.choose(&[0, 1]);
            let b = s.choose(&[0, 1]);
            assert!(s.mismatch.is_none());
            seen.push((a, b));
            frames = s.frames;
            if !advance(&mut frames) {
                break;
            }
        }
        assert_eq!(seen, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn dfs_flags_nondeterministic_replay() {
        let mut s = DfsSched::with_prefix(vec![Frame {
            options: vec![0, 1],
            chosen: 1,
        }]);
        let _ = s.choose(&[0, 2]);
        assert!(s.mismatch.is_some());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = RandomSched::new(seed, 3);
            (0..32).map(|_| s.choose(&[0, 1, 2])).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        // Different seeds disagree somewhere (overwhelmingly likely).
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn replay_follows_choices_then_defaults() {
        let mut s = ReplaySched::new(vec![1, 0]);
        assert_eq!(s.choose(&[3, 5]), 5);
        assert_eq!(s.choose(&[3, 5]), 3);
        assert_eq!(s.choose(&[3, 5]), 3, "past the list: first runnable");
    }
}
