//! The cooperative scheduler: runs N logical processes on N OS threads but
//! lets exactly one make progress at a time, switching only at the
//! instrumented sync points exported by `mpf_shm::hooks`.
//!
//! # Model
//!
//! Each logical process is an OS thread with a [`Binding`] installed as its
//! thread-local [`SyncHook`].  The controller hands a single run token
//! around: a thread executes until its next hook call, where the binding
//! reports its state (still runnable, blocked on a lock, blocked on a wait
//! queue) and the active [`Sched`] strategy picks who runs next.  Because
//! every racy primitive in the facility funnels through the hook layer,
//! permuting these decisions permutes every interleaving that matters,
//! and the same decision sequence always reproduces the same execution.
//!
//! Blocking is modeled, not performed: a hooked lock acquire that fails
//! `try_lock` parks the logical process in the controller until the
//! holder's release hook fires, and a hooked wait parks until a notify on
//! one of its queues — no OS-level spinning or futex waits, so a schedule
//! in which the "wrong" process runs first costs microseconds, not
//! timeouts.
//!
//! # Failure detection
//!
//! * **Deadlock** — a process blocks (or finishes) and no process is
//!   runnable while some are still blocked.
//! * **Step limit** — more scheduling decisions than `max_steps`: a
//!   livelock or unbounded retry loop.
//! * **Panic** — a process panics (assertion failure in scenario code or
//!   in the facility itself).
//!
//! Any of these aborts the schedule: every parked thread is woken and torn
//! down by unwinding with a private [`Aborted`] payload.  While a thread is
//! unwinding, its hooks degrade to free-running (plain `try_lock` spins, no
//! controller interaction) so drop glue that takes locks cannot wedge the
//! teardown.

use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mpf_shm::hooks::{self, SyncEvent, SyncHook};

use crate::explore::DeathPlan;
use crate::sched::{Sched, KILL_BIT};

/// Why a schedule failed.  Carried in [`crate::Failure`] together with the
/// schedule id that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A logical process panicked.
    Panic {
        /// Index of the process in the case's `procs` vector.
        thread: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// No process runnable, some still blocked.
    Deadlock {
        /// The blocked process indices.
        blocked: Vec<usize>,
    },
    /// The schedule exceeded the decision budget (livelock guard).
    StepLimit,
    /// The case's `check` closure rejected the final state.
    CheckFailed(String),
    /// A replayed schedule prefix diverged from its recording.
    Nondeterminism(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic { thread, message } => {
                write!(f, "process {thread} panicked: {message}")
            }
            FailureKind::Deadlock { blocked } => {
                write!(f, "deadlock: processes {blocked:?} blocked, none runnable")
            }
            FailureKind::StepLimit => write!(f, "step limit exceeded (livelock?)"),
            FailureKind::CheckFailed(msg) => write!(f, "final-state check failed: {msg}"),
            FailureKind::Nondeterminism(msg) => write!(f, "nondeterministic case: {msg}"),
        }
    }
}

/// Panic payload used to unwind a logical process when the schedule is
/// torn down.  Not itself a failure; the real cause is already recorded.
struct Aborted;

/// Panic payload used to unwind a logical process the scheduler chose to
/// *kill* (modeled `SIGKILL`).  Also not a failure: death is part of the
/// explored state space, and the victim's thread must still exit so the
/// run can join it.  The modeled process stays a corpse — its status
/// remains [`Status::Dead`], any in-region locks it held stay held (the
/// facility's manual lock/unlock discipline means unwinding releases
/// nothing shared), and survivors must cope.
struct Killed;

/// Scheduling state of one logical process.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Can be picked to run.
    Runnable,
    /// Waiting for the lock at this resource address to be released.
    BlockedLock(usize),
    /// Waiting for a notify on any of these wait-queue addresses.
    BlockedWait(Vec<usize>),
    /// Done (returned, or unwound after an abort).
    Finished,
    /// Vanished by a kill pseudo-option: terminal, but *not* a clean
    /// finish — whatever the process held in the region, it still holds.
    Dead,
}

/// Terminal states: the schedule can end while processes are in these.
fn terminal(s: &Status) -> bool {
    matches!(s, Status::Finished | Status::Dead)
}

struct State {
    /// Set by `launch` once all workers are spawned.
    started: bool,
    /// A failure was recorded; all parked threads must unwind.
    aborted: bool,
    /// Thread id currently holding the run token.
    current: usize,
    status: Vec<Status>,
    /// Which processes the scheduler may kill (from the case's
    /// [`DeathPlan`]; each dies at most once — `Dead` is terminal).
    mortal: Vec<bool>,
    /// Invoked under the state lock when a process is killed; flips the
    /// facility's modeled liveness oracle.  Must be hook-free (atomic
    /// stores only) — a hooked operation here would re-enter the
    /// scheduler on the deciding thread and wedge the run.
    on_death: Option<Box<dyn Fn(usize) + Send>>,
    /// Scheduling decisions taken so far.
    steps: u64,
    sched: Sched,
    failure: Option<FailureKind>,
}

fn runnable_of(status: &[Status]) -> Vec<usize> {
    status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == Status::Runnable)
        .map(|(t, _)| t)
        .collect()
}

fn blocked_of(status: &[Status]) -> Vec<usize> {
    status
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Status::BlockedLock(_) | Status::BlockedWait(_)))
        .map(|(t, _)| t)
        .collect()
}

/// Suppresses the default panic printout for the harness's own [`Aborted`]
/// and [`Killed`] unwinds, which would otherwise spam one "thread
/// panicked" banner per parked process per failing schedule (or per
/// modeled death).  Real panics still print.
fn silence_aborted_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Aborted>().is_none()
                && info.payload().downcast_ref::<Killed>().is_none()
            {
                prev(info);
            }
        }));
    });
}

/// Runs one case under one schedule.  See the module docs for the model.
pub(crate) struct Controller {
    state: Mutex<State>,
    cv: Condvar,
    /// Treat pool alloc/free events as preemption points too (finer
    /// interleavings, much larger schedule tree).
    preempt_events: bool,
    max_steps: u64,
}

impl Controller {
    pub fn new(
        n: usize,
        sched: Sched,
        preempt_events: bool,
        max_steps: u64,
        death: Option<DeathPlan>,
    ) -> Arc<Self> {
        assert!(n > 0, "a case needs at least one process");
        let mut mortal = vec![false; n];
        let on_death = death.map(|d| {
            for t in d.victims {
                assert!(t < n, "death plan victim {t} out of range (n = {n})");
                mortal[t] = true;
            }
            d.on_death
        });
        Arc::new(Self {
            state: Mutex::new(State {
                started: false,
                aborted: false,
                current: usize::MAX,
                status: vec![Status::Runnable; n],
                mortal,
                on_death,
                steps: 0,
                sched,
                failure: None,
            }),
            cv: Condvar::new(),
            preempt_events,
            max_steps,
        })
    }

    /// Runs `procs` to completion (or failure) under this controller's
    /// schedule.  Returns the failure, if any, and the number of decisions
    /// taken.
    pub fn run(
        self: &Arc<Self>,
        procs: Vec<Box<dyn FnOnce() + Send>>,
    ) -> (Option<FailureKind>, u64) {
        silence_aborted_panics();
        std::thread::scope(|scope| {
            for (tid, proc) in procs.into_iter().enumerate() {
                let ctrl = Arc::clone(self);
                scope.spawn(move || ctrl.worker(tid, proc));
            }
            self.launch();
        });
        let st = self.lock_state();
        (st.failure.clone(), st.steps)
    }

    /// Recovers the schedule strategy (with its recorded decisions) after
    /// [`Self::run`] returned and all workers are joined.
    pub fn into_sched(self: Arc<Self>) -> Sched {
        let ctrl = Arc::try_unwrap(self)
            .ok()
            .expect("workers joined, no other controller refs remain");
        ctrl.state
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .sched
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        // The state mutex is never held across a panic (every unwind drops
        // the guard first), but stay deliberate about poisoning anyway.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn worker(self: Arc<Self>, tid: usize, proc: Box<dyn FnOnce() + Send>) {
        let binding: Rc<dyn SyncHook> = Rc::new(Binding {
            ctrl: Arc::clone(&self),
            tid,
        });
        let _guard = hooks::install(binding);
        match panic::catch_unwind(AssertUnwindSafe(|| {
            self.first_wait(tid);
            proc();
        })) {
            Ok(()) => self.finish(tid),
            Err(payload) => {
                if payload.downcast_ref::<Aborted>().is_some() {
                    // Harness-initiated teardown; cause already recorded.
                    self.finish_after_abort(tid);
                } else if payload.downcast_ref::<Killed>().is_some() {
                    // Modeled death: the thread exits so the run can join
                    // it, but the logical process stays a corpse (status
                    // `Dead`, in-region locks still held).  The unwind is
                    // complete here — only now may anyone else run.
                    self.after_kill();
                } else {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    self.abort(
                        tid,
                        FailureKind::Panic {
                            thread: tid,
                            message,
                        },
                    );
                }
            }
        }
    }

    /// Parks a freshly spawned worker until the launch decision picks it.
    fn first_wait(&self, tid: usize) {
        let mut st = self.lock_state();
        while !(st.aborted || st.status[tid] == Status::Dead || st.started && st.current == tid) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        if st.status[tid] == Status::Dead {
            // Killed before its first instruction ran: a valid modeled
            // death (the process attached and then vanished).
            drop(st);
            panic::panic_any(Killed);
        }
    }

    /// Takes the first scheduling decision once every worker is spawned.
    fn launch(&self) {
        let mut st = self.lock_state();
        st.started = true;
        if let Some(next) = self.decide(&mut st) {
            // Possibly a victim killed at the starting line: it wakes,
            // sees `Dead`, and unwinds before anyone else runs.
            st.current = next;
        }
        drop(st);
        self.cv.notify_all();
    }

    /// The scheduler's option set for the current state: runnable thread
    /// ids (ascending) followed by one [`KILL_BIT`]-tagged kill
    /// pseudo-option per still-alive mortal process (ascending).
    fn options_of(st: &State) -> Vec<usize> {
        let mut opts = runnable_of(&st.status);
        for (t, s) in st.status.iter().enumerate() {
            if st.mortal[t] && !terminal(s) {
                opts.push(KILL_BIT | t);
            }
        }
        opts
    }

    /// One scheduling decision.  A kill pseudo-option marks the victim
    /// [`Status::Dead`], runs the case's `on_death` callback (which flips
    /// the facility's modeled liveness oracle), wakes every blocked
    /// process to re-evaluate against the new world — a corpse's locks
    /// can now be broken, its notifies will never come — and returns the
    /// *victim* as the next scheduled thread: it wakes, sees `Dead`, and
    /// unwinds with [`Killed`] while every other process stays parked, so
    /// its drop glue (process-local guard releases, `Arc` drops) cannot
    /// race the next process's steps and perturb the schedule.  The
    /// decision after a kill is taken in [`Self::after_kill`], once the
    /// unwind has fully completed.  Returns `None` only when no option
    /// remains (every process terminal, or a genuine deadlock — the
    /// caller distinguishes).
    fn decide(&self, st: &mut State) -> Option<usize> {
        let opts = Self::options_of(st);
        if opts.is_empty() {
            return None;
        }
        let choice = st.sched.choose(&opts);
        if choice & KILL_BIT == 0 {
            return Some(choice);
        }
        let victim = choice & !KILL_BIT;
        st.status[victim] = Status::Dead;
        if let Some(cb) = &st.on_death {
            cb(victim);
        }
        for s in st.status.iter_mut() {
            if matches!(s, Status::BlockedLock(_) | Status::BlockedWait(_)) {
                // Spurious wakeup (legal): once scheduled they retry
                // their `try_lock`/`ready` against the corpse's state.
                *s = Status::Runnable;
            }
        }
        Some(victim)
    }

    /// The heart of the model: the calling process (which holds the run
    /// token) records its new status, the strategy picks the next process,
    /// and the caller parks until it is scheduled again.  Unwinds with
    /// [`Aborted`] on abort, step-limit, or deadlock — and with
    /// [`Killed`] when a kill decision (possibly its own) vanished the
    /// caller.
    fn deschedule(&self, tid: usize, status: Status) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        debug_assert_eq!(st.current, tid, "only the scheduled process may act");
        st.steps += 1;
        if st.steps > self.max_steps {
            st.failure.get_or_insert(FailureKind::StepLimit);
            self.abort_locked(st);
        }
        st.status[tid] = status;
        match self.decide(&mut st) {
            Some(next) => st.current = next,
            None => {
                // The caller just blocked, nobody can make progress, and
                // no kill can change that (the caller itself is blocked,
                // so "all terminal" is impossible here).
                let blocked = blocked_of(&st.status);
                st.failure.get_or_insert(FailureKind::Deadlock { blocked });
                self.abort_locked(st);
            }
        }
        self.cv.notify_all();
        while !(st.aborted
            || st.status[tid] == Status::Dead
            || st.current == tid && st.status[tid] == Status::Runnable)
        {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        if st.status[tid] == Status::Dead {
            drop(st);
            panic::panic_any(Killed);
        }
    }

    /// Records the failure already stored in `st`, wakes every parked
    /// process, and unwinds the caller.  Never returns.
    fn abort_locked(&self, mut st: MutexGuard<'_, State>) -> ! {
        st.aborted = true;
        drop(st);
        self.cv.notify_all();
        panic::panic_any(Aborted);
    }

    /// Marks processes blocked on the lock at `res` runnable again.
    fn wake_lock_waiters(&self, res: usize) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        for s in st.status.iter_mut() {
            if *s == Status::BlockedLock(res) {
                *s = Status::Runnable;
            }
        }
    }

    /// Marks processes waiting on the queue at `res` runnable again; they
    /// re-check their `ready` predicates once scheduled.
    fn wake_wait_waiters(&self, res: usize) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        for s in st.status.iter_mut() {
            if matches!(s, Status::BlockedWait(rs) if rs.contains(&res)) {
                *s = Status::Runnable;
            }
        }
    }

    /// Normal completion of a process: hand the token to whoever is next,
    /// or detect termination / deadlock.
    fn finish(&self, tid: usize) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Finished;
        if st.aborted || st.status.iter().all(terminal) {
            drop(st);
            self.cv.notify_all();
            return;
        }
        match self.decide(&mut st) {
            Some(next) => st.current = next,
            None => {
                // Someone is still non-terminal (checked above) with no
                // runnable process and no kill left: deadlock.
                let blocked = blocked_of(&st.status);
                st.failure.get_or_insert(FailureKind::Deadlock { blocked });
                st.aborted = true;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Hand-off after a modeled death: the victim's thread calls this from
    /// its [`Killed`] catch, once its unwind has fully completed — only
    /// then is the next process scheduled, so unwind side effects
    /// (process-local lock releases in drop glue) are ordered before
    /// anything a survivor does.  Mirrors [`Self::finish`] except the
    /// victim's status is already [`Status::Dead`].
    fn after_kill(&self) {
        let mut st = self.lock_state();
        if st.aborted || st.status.iter().all(terminal) {
            drop(st);
            self.cv.notify_all();
            return;
        }
        match self.decide(&mut st) {
            Some(next) => st.current = next,
            None => {
                let blocked = blocked_of(&st.status);
                st.failure.get_or_insert(FailureKind::Deadlock { blocked });
                st.aborted = true;
            }
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Completion of a process that unwound with [`Aborted`]: just record
    /// it so `run` can join everyone.
    fn finish_after_abort(&self, tid: usize) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Finished;
        drop(st);
        self.cv.notify_all();
    }

    /// A process failed for real: record the cause and tear everything
    /// down.
    fn abort(&self, tid: usize, failure: FailureKind) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Finished;
        st.failure.get_or_insert(failure);
        st.aborted = true;
        drop(st);
        self.cv.notify_all();
    }
}

/// The per-thread [`SyncHook`] connecting a logical process to its
/// controller.
///
/// Every method first checks [`std::thread::panicking`]: while the thread
/// is unwinding (either from a real failure or from the harness's
/// [`Aborted`] teardown) the hooks degrade to free-running — locks spin on
/// `try_lock`, waits return immediately (a legal spurious wakeup), release
/// and notify do nothing — so drop glue inside the facility can never
/// re-enter the (now aborted) scheduler and wedge the teardown.
struct Binding {
    ctrl: Arc<Controller>,
    tid: usize,
}

impl SyncHook for Binding {
    fn yield_point(&self, _ev: SyncEvent) {
        if std::thread::panicking() {
            return;
        }
        if self.ctrl.preempt_events {
            self.ctrl.deschedule(self.tid, Status::Runnable);
        }
    }

    fn lock_acquire(&self, resource: usize, try_lock: &mut dyn FnMut() -> bool) {
        if std::thread::panicking() {
            // Free-running teardown: the holder is unwinding too and will
            // release through its guard drops.
            while !try_lock() {
                std::thread::yield_now();
            }
            return;
        }
        loop {
            // Acquiring is a preemption point: another process may run (and
            // even take this lock) first.
            self.ctrl.deschedule(self.tid, Status::Runnable);
            if try_lock() {
                return;
            }
            // Park until the holder's release hook marks us runnable, then
            // retry — the release order is itself a scheduling decision.
            self.ctrl
                .deschedule(self.tid, Status::BlockedLock(resource));
        }
    }

    fn lock_release(&self, resource: usize) {
        if std::thread::panicking() {
            return;
        }
        self.ctrl.wake_lock_waiters(resource);
        self.ctrl.deschedule(self.tid, Status::Runnable);
    }

    fn wait(&self, resource: usize, ready: &mut dyn FnMut() -> bool) {
        if std::thread::panicking() {
            return;
        }
        // Execution is serialized, so nothing can fire the condition
        // between this check and parking: no lost wakeups by construction.
        while !ready() {
            self.ctrl
                .deschedule(self.tid, Status::BlockedWait(vec![resource]));
        }
    }

    fn wait_multi(&self, resources: &[usize], ready: &mut dyn FnMut() -> bool) {
        if std::thread::panicking() {
            return;
        }
        while !ready() {
            self.ctrl
                .deschedule(self.tid, Status::BlockedWait(resources.to_vec()));
        }
    }

    fn notify(&self, resource: usize) {
        if std::thread::panicking() {
            return;
        }
        self.ctrl.wake_wait_waiters(resource);
        self.ctrl.deschedule(self.tid, Status::Runnable);
    }
}
