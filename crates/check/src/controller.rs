//! The cooperative scheduler: runs N logical processes on N OS threads but
//! lets exactly one make progress at a time, switching only at the
//! instrumented sync points exported by `mpf_shm::hooks`.
//!
//! # Model
//!
//! Each logical process is an OS thread with a [`Binding`] installed as its
//! thread-local [`SyncHook`].  The controller hands a single run token
//! around: a thread executes until its next hook call, where the binding
//! reports its state (still runnable, blocked on a lock, blocked on a wait
//! queue) and the active [`Sched`] strategy picks who runs next.  Because
//! every racy primitive in the facility funnels through the hook layer,
//! permuting these decisions permutes every interleaving that matters,
//! and the same decision sequence always reproduces the same execution.
//!
//! Blocking is modeled, not performed: a hooked lock acquire that fails
//! `try_lock` parks the logical process in the controller until the
//! holder's release hook fires, and a hooked wait parks until a notify on
//! one of its queues — no OS-level spinning or futex waits, so a schedule
//! in which the "wrong" process runs first costs microseconds, not
//! timeouts.
//!
//! # Failure detection
//!
//! * **Deadlock** — a process blocks (or finishes) and no process is
//!   runnable while some are still blocked.
//! * **Step limit** — more scheduling decisions than `max_steps`: a
//!   livelock or unbounded retry loop.
//! * **Panic** — a process panics (assertion failure in scenario code or
//!   in the facility itself).
//!
//! Any of these aborts the schedule: every parked thread is woken and torn
//! down by unwinding with a private [`Aborted`] payload.  While a thread is
//! unwinding, its hooks degrade to free-running (plain `try_lock` spins, no
//! controller interaction) so drop glue that takes locks cannot wedge the
//! teardown.

use std::panic::{self, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use mpf_shm::hooks::{self, SyncEvent, SyncHook};

use crate::sched::Sched;

/// Why a schedule failed.  Carried in [`crate::Failure`] together with the
/// schedule id that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FailureKind {
    /// A logical process panicked.
    Panic {
        /// Index of the process in the case's `procs` vector.
        thread: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// No process runnable, some still blocked.
    Deadlock {
        /// The blocked process indices.
        blocked: Vec<usize>,
    },
    /// The schedule exceeded the decision budget (livelock guard).
    StepLimit,
    /// The case's `check` closure rejected the final state.
    CheckFailed(String),
    /// A replayed schedule prefix diverged from its recording.
    Nondeterminism(String),
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FailureKind::Panic { thread, message } => {
                write!(f, "process {thread} panicked: {message}")
            }
            FailureKind::Deadlock { blocked } => {
                write!(f, "deadlock: processes {blocked:?} blocked, none runnable")
            }
            FailureKind::StepLimit => write!(f, "step limit exceeded (livelock?)"),
            FailureKind::CheckFailed(msg) => write!(f, "final-state check failed: {msg}"),
            FailureKind::Nondeterminism(msg) => write!(f, "nondeterministic case: {msg}"),
        }
    }
}

/// Panic payload used to unwind a logical process when the schedule is
/// torn down.  Not itself a failure; the real cause is already recorded.
struct Aborted;

/// Scheduling state of one logical process.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    /// Can be picked to run.
    Runnable,
    /// Waiting for the lock at this resource address to be released.
    BlockedLock(usize),
    /// Waiting for a notify on any of these wait-queue addresses.
    BlockedWait(Vec<usize>),
    /// Done (returned, or unwound after an abort).
    Finished,
}

struct State {
    /// Set by `launch` once all workers are spawned.
    started: bool,
    /// A failure was recorded; all parked threads must unwind.
    aborted: bool,
    /// Thread id currently holding the run token.
    current: usize,
    status: Vec<Status>,
    /// Scheduling decisions taken so far.
    steps: u64,
    sched: Sched,
    failure: Option<FailureKind>,
}

fn runnable_of(status: &[Status]) -> Vec<usize> {
    status
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == Status::Runnable)
        .map(|(t, _)| t)
        .collect()
}

fn blocked_of(status: &[Status]) -> Vec<usize> {
    status
        .iter()
        .enumerate()
        .filter(|(_, s)| matches!(s, Status::BlockedLock(_) | Status::BlockedWait(_)))
        .map(|(t, _)| t)
        .collect()
}

/// Suppresses the default panic printout for the harness's own [`Aborted`]
/// unwinds, which would otherwise spam one "thread panicked" banner per
/// parked process per failing schedule.  Real panics still print.
fn silence_aborted_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<Aborted>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Runs one case under one schedule.  See the module docs for the model.
pub(crate) struct Controller {
    state: Mutex<State>,
    cv: Condvar,
    /// Treat pool alloc/free events as preemption points too (finer
    /// interleavings, much larger schedule tree).
    preempt_events: bool,
    max_steps: u64,
}

impl Controller {
    pub fn new(n: usize, sched: Sched, preempt_events: bool, max_steps: u64) -> Arc<Self> {
        assert!(n > 0, "a case needs at least one process");
        Arc::new(Self {
            state: Mutex::new(State {
                started: false,
                aborted: false,
                current: usize::MAX,
                status: vec![Status::Runnable; n],
                steps: 0,
                sched,
                failure: None,
            }),
            cv: Condvar::new(),
            preempt_events,
            max_steps,
        })
    }

    /// Runs `procs` to completion (or failure) under this controller's
    /// schedule.  Returns the failure, if any, and the number of decisions
    /// taken.
    pub fn run(
        self: &Arc<Self>,
        procs: Vec<Box<dyn FnOnce() + Send>>,
    ) -> (Option<FailureKind>, u64) {
        silence_aborted_panics();
        std::thread::scope(|scope| {
            for (tid, proc) in procs.into_iter().enumerate() {
                let ctrl = Arc::clone(self);
                scope.spawn(move || ctrl.worker(tid, proc));
            }
            self.launch();
        });
        let st = self.lock_state();
        (st.failure.clone(), st.steps)
    }

    /// Recovers the schedule strategy (with its recorded decisions) after
    /// [`Self::run`] returned and all workers are joined.
    pub fn into_sched(self: Arc<Self>) -> Sched {
        let ctrl = Arc::try_unwrap(self)
            .ok()
            .expect("workers joined, no other controller refs remain");
        ctrl.state
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .sched
    }

    fn lock_state(&self) -> MutexGuard<'_, State> {
        // The state mutex is never held across a panic (every unwind drops
        // the guard first), but stay deliberate about poisoning anyway.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn worker(self: Arc<Self>, tid: usize, proc: Box<dyn FnOnce() + Send>) {
        let binding: Rc<dyn SyncHook> = Rc::new(Binding {
            ctrl: Arc::clone(&self),
            tid,
        });
        let _guard = hooks::install(binding);
        match panic::catch_unwind(AssertUnwindSafe(|| {
            self.first_wait(tid);
            proc();
        })) {
            Ok(()) => self.finish(tid),
            Err(payload) => {
                if payload.downcast_ref::<Aborted>().is_some() {
                    // Harness-initiated teardown; cause already recorded.
                    self.finish_after_abort(tid);
                } else {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| s.to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    self.abort(
                        tid,
                        FailureKind::Panic {
                            thread: tid,
                            message,
                        },
                    );
                }
            }
        }
    }

    /// Parks a freshly spawned worker until the launch decision picks it.
    fn first_wait(&self, tid: usize) {
        let mut st = self.lock_state();
        while !(st.aborted || st.started && st.current == tid) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
    }

    /// Takes the first scheduling decision once every worker is spawned.
    fn launch(&self) {
        let mut st = self.lock_state();
        st.started = true;
        let runnable = runnable_of(&st.status);
        st.current = st.sched.choose(&runnable);
        drop(st);
        self.cv.notify_all();
    }

    /// The heart of the model: the calling process (which holds the run
    /// token) records its new status, the strategy picks the next process,
    /// and the caller parks until it is scheduled again.  Unwinds with
    /// [`Aborted`] on abort, step-limit, or deadlock.
    fn deschedule(&self, tid: usize, status: Status) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        debug_assert_eq!(st.current, tid, "only the scheduled process may act");
        st.steps += 1;
        if st.steps > self.max_steps {
            st.failure.get_or_insert(FailureKind::StepLimit);
            self.abort_locked(st);
        }
        st.status[tid] = status;
        let runnable = runnable_of(&st.status);
        if runnable.is_empty() {
            // The caller just blocked and nobody can make progress.
            let blocked = blocked_of(&st.status);
            st.failure.get_or_insert(FailureKind::Deadlock { blocked });
            self.abort_locked(st);
        }
        st.current = st.sched.choose(&runnable);
        self.cv.notify_all();
        while !(st.aborted || st.current == tid && st.status[tid] == Status::Runnable) {
            st = self.cv.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
    }

    /// Records the failure already stored in `st`, wakes every parked
    /// process, and unwinds the caller.  Never returns.
    fn abort_locked(&self, mut st: MutexGuard<'_, State>) -> ! {
        st.aborted = true;
        drop(st);
        self.cv.notify_all();
        panic::panic_any(Aborted);
    }

    /// Marks processes blocked on the lock at `res` runnable again.
    fn wake_lock_waiters(&self, res: usize) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        for s in st.status.iter_mut() {
            if *s == Status::BlockedLock(res) {
                *s = Status::Runnable;
            }
        }
    }

    /// Marks processes waiting on the queue at `res` runnable again; they
    /// re-check their `ready` predicates once scheduled.
    fn wake_wait_waiters(&self, res: usize) {
        let mut st = self.lock_state();
        if st.aborted {
            drop(st);
            panic::panic_any(Aborted);
        }
        for s in st.status.iter_mut() {
            if matches!(s, Status::BlockedWait(rs) if rs.contains(&res)) {
                *s = Status::Runnable;
            }
        }
    }

    /// Normal completion of a process: hand the token to whoever is next,
    /// or detect termination / deadlock.
    fn finish(&self, tid: usize) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Finished;
        if st.aborted || st.status.iter().all(|s| *s == Status::Finished) {
            drop(st);
            self.cv.notify_all();
            return;
        }
        let runnable = runnable_of(&st.status);
        if runnable.is_empty() {
            let blocked = blocked_of(&st.status);
            st.failure.get_or_insert(FailureKind::Deadlock { blocked });
            st.aborted = true;
        } else {
            st.current = st.sched.choose(&runnable);
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Completion of a process that unwound with [`Aborted`]: just record
    /// it so `run` can join everyone.
    fn finish_after_abort(&self, tid: usize) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Finished;
        drop(st);
        self.cv.notify_all();
    }

    /// A process failed for real: record the cause and tear everything
    /// down.
    fn abort(&self, tid: usize, failure: FailureKind) {
        let mut st = self.lock_state();
        st.status[tid] = Status::Finished;
        st.failure.get_or_insert(failure);
        st.aborted = true;
        drop(st);
        self.cv.notify_all();
    }
}

/// The per-thread [`SyncHook`] connecting a logical process to its
/// controller.
///
/// Every method first checks [`std::thread::panicking`]: while the thread
/// is unwinding (either from a real failure or from the harness's
/// [`Aborted`] teardown) the hooks degrade to free-running — locks spin on
/// `try_lock`, waits return immediately (a legal spurious wakeup), release
/// and notify do nothing — so drop glue inside the facility can never
/// re-enter the (now aborted) scheduler and wedge the teardown.
struct Binding {
    ctrl: Arc<Controller>,
    tid: usize,
}

impl SyncHook for Binding {
    fn yield_point(&self, _ev: SyncEvent) {
        if std::thread::panicking() {
            return;
        }
        if self.ctrl.preempt_events {
            self.ctrl.deschedule(self.tid, Status::Runnable);
        }
    }

    fn lock_acquire(&self, resource: usize, try_lock: &mut dyn FnMut() -> bool) {
        if std::thread::panicking() {
            // Free-running teardown: the holder is unwinding too and will
            // release through its guard drops.
            while !try_lock() {
                std::thread::yield_now();
            }
            return;
        }
        loop {
            // Acquiring is a preemption point: another process may run (and
            // even take this lock) first.
            self.ctrl.deschedule(self.tid, Status::Runnable);
            if try_lock() {
                return;
            }
            // Park until the holder's release hook marks us runnable, then
            // retry — the release order is itself a scheduling decision.
            self.ctrl
                .deschedule(self.tid, Status::BlockedLock(resource));
        }
    }

    fn lock_release(&self, resource: usize) {
        if std::thread::panicking() {
            return;
        }
        self.ctrl.wake_lock_waiters(resource);
        self.ctrl.deschedule(self.tid, Status::Runnable);
    }

    fn wait(&self, resource: usize, ready: &mut dyn FnMut() -> bool) {
        if std::thread::panicking() {
            return;
        }
        // Execution is serialized, so nothing can fire the condition
        // between this check and parking: no lost wakeups by construction.
        while !ready() {
            self.ctrl
                .deschedule(self.tid, Status::BlockedWait(vec![resource]));
        }
    }

    fn wait_multi(&self, resources: &[usize], ready: &mut dyn FnMut() -> bool) {
        if std::thread::panicking() {
            return;
        }
        while !ready() {
            self.ctrl
                .deschedule(self.tid, Status::BlockedWait(resources.to_vec()));
        }
    }

    fn notify(&self, resource: usize) {
        if std::thread::panicking() {
            return;
        }
        self.ctrl.wake_wait_waiters(resource);
        self.ctrl.deschedule(self.tid, Status::Runnable);
    }
}
