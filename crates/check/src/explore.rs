//! Exploration drivers: enumerate or sample schedules for a [`Case`] and
//! report the first failing one with enough information to replay it.

use crate::controller::Controller;
pub use crate::controller::FailureKind;
use crate::sched::{advance, DfsSched, RandomSched, ReplaySched, Sched};

/// One concurrency scenario: `procs` are the logical processes raced under
/// the scheduler; `check` inspects the final state once every process has
/// finished (it runs unhooked, on the exploring thread).
///
/// The factory passed to the explorers builds a *fresh* case per schedule —
/// shared state (the `Mpf` instance, result cells) is typically carried in
/// `Arc`s cloned into the closures.
pub struct Case {
    /// The logical processes to race.  Index in this vector is the process
    /// id that appears in failures and schedules.
    pub procs: Vec<Box<dyn FnOnce() + Send>>,
    /// Final-state predicate, e.g. `Mpf::check_invariants` plus
    /// scenario-specific assertions.  An `Err` fails the schedule.
    pub check: Box<dyn FnOnce() -> Result<(), String>>,
    /// Modeled sudden death, or `None` for an immortal case (the option
    /// sets then contain only runnable thread ids, exactly as before).
    pub death: Option<DeathPlan>,
}

/// Modeled `SIGKILL` for schedule exploration: lets the scheduler vanish
/// a logical process at *any* decision point — including mid-critical-
/// section, with in-region locks held — so dead-peer recovery paths are
/// enumerated under DFS/random schedules instead of sampled by actually
/// killing OS processes.
///
/// A kill appears to the strategy as an extra option at every decision
/// (see [`crate::sched::KILL_BIT`]), so DFS enumerates deaths at every
/// depth, random schedules take them with small probability, and a
/// failing schedule's replay re-kills at exactly the recorded point.
pub struct DeathPlan {
    /// Process ids eligible to die (each dies at most once per schedule).
    pub victims: Vec<usize>,
    /// Called once per death, on the deciding thread, with every other
    /// process parked: flip whatever liveness oracle the facility under
    /// test consults (e.g. `IpcMpf::debug_abandon_slot` via a clone of
    /// the victim's view) so survivors observe a corpse rather than a
    /// clean shutdown.  **Must be hook-free** — atomic stores only, no
    /// locks, sends, or waits — because it runs inside the scheduler.
    pub on_death: Box<dyn Fn(usize) + Send>,
}

/// Identifies one schedule so a failure can be re-run exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleId {
    /// A DFS schedule: the chosen index at each decision point.  Replay
    /// with [`replay_choices`].
    Choices(Vec<usize>),
    /// A random schedule: the PCT seed.  Replay with [`replay_seed`].
    Seed(u64),
}

/// A failing schedule: what went wrong and how to run it again.
#[derive(Debug, Clone)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// The schedule that produced it.
    pub schedule: ScheduleId,
}

impl Failure {
    /// Human instructions for reproducing this exact schedule.
    pub fn replay_hint(&self) -> String {
        match &self.schedule {
            ScheduleId::Choices(c) => {
                format!("replay_choices(&opts, &{c:?}, make)")
            }
            ScheduleId::Seed(s) => format!("replay_seed(&opts, {s}, make)"),
        }
    }
}

/// Outcome of an exploration run.
#[derive(Debug)]
pub struct Report {
    /// The case name (for messages).
    pub name: String,
    /// Schedules actually executed.
    pub schedules: usize,
    /// `true` if DFS enumerated the whole bounded tree (random exploration
    /// never sets this).
    pub exhausted: bool,
    /// The first failing schedule, if any.
    pub failure: Option<Failure>,
}

impl Report {
    /// Panics with a replayable description if any schedule failed.
    pub fn assert_ok(&self) {
        if let Some(f) = &self.failure {
            panic!(
                "mpf-check case '{}' failed on schedule {} of {}: {}\n  schedule: {:?}\n  replay:   {}",
                self.name,
                self.schedules,
                self.schedules,
                f.kind,
                f.schedule,
                f.replay_hint()
            );
        }
    }
}

/// Knobs for an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Case name, used in reports.
    pub name: String,
    /// Base schedule budget; scaled by `MPF_CHECK_SCHEDULE_SCALE`.
    pub max_schedules: usize,
    /// Per-schedule decision budget (livelock guard).
    pub max_steps: u64,
    /// Also preempt at pool alloc/free events (finer-grained, much larger
    /// tree).  Off by default: lock and wait-queue boundaries already
    /// order every state transition in the facility.
    pub preempt_events: bool,
}

impl ExploreOpts {
    /// Defaults: 256 schedules (pre-scaling), 100k decisions per schedule,
    /// coarse preemption.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            max_schedules: 256,
            max_steps: 100_000,
            preempt_events: false,
        }
    }

    /// Sets the base schedule budget.
    pub fn max_schedules(mut self, n: usize) -> Self {
        self.max_schedules = n;
        self
    }

    /// Sets the per-schedule decision budget.
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Enables preemption at pool alloc/free events.
    pub fn preempt_events(mut self, on: bool) -> Self {
        self.preempt_events = on;
        self
    }

    /// The effective schedule budget: `max_schedules` times the
    /// `MPF_CHECK_SCHEDULE_SCALE` environment variable (a float, default
    /// 1.0).  CI sets a small scale on pull requests and a large one on
    /// the nightly run.
    pub fn budget(&self) -> usize {
        let scale = std::env::var("MPF_CHECK_SCHEDULE_SCALE")
            .ok()
            .and_then(|v| v.parse::<f64>().ok())
            .filter(|s| *s > 0.0)
            .unwrap_or(1.0);
        ((self.max_schedules as f64 * scale).ceil() as usize).max(1)
    }
}

/// Runs one schedule of a freshly built case under `sched`.  Returns the
/// failure (if any) and the strategy (with recorded decisions) back.
fn run_once(opts: &ExploreOpts, sched: Sched, case: Case) -> (Option<FailureKind>, Sched) {
    let Case {
        procs,
        check,
        death,
    } = case;
    let ctrl = Controller::new(
        procs.len(),
        sched,
        opts.preempt_events,
        opts.max_steps,
        death,
    );
    let (mut failure, _steps) = ctrl.run(procs);
    if failure.is_none() {
        failure = check().err().map(FailureKind::CheckFailed);
    }
    (failure, ctrl.into_sched())
}

/// Bounded exhaustive depth-first exploration.
///
/// Enumerates distinct interleavings by advancing the deepest scheduling
/// decision with an untried option between runs, up to the schedule
/// budget.  `exhausted` in the report tells you whether the whole tree fit
/// inside the budget.
pub fn explore_dfs(opts: &ExploreOpts, mut make: impl FnMut() -> Case) -> Report {
    let budget = opts.budget();
    let mut frames = Vec::new();
    let mut schedules = 0usize;
    loop {
        let sched = Sched::Dfs(DfsSched::with_prefix(std::mem::take(&mut frames)));
        let (failure, sched) = run_once(opts, sched, make());
        let Sched::Dfs(dfs) = sched else {
            unreachable!()
        };
        frames = dfs.frames;
        schedules += 1;
        let schedule_id = || ScheduleId::Choices(frames.iter().map(|f| f.chosen).collect());
        if let Some(m) = dfs.mismatch {
            return Report {
                name: opts.name.clone(),
                schedules,
                exhausted: false,
                failure: Some(Failure {
                    kind: FailureKind::Nondeterminism(m),
                    schedule: schedule_id(),
                }),
            };
        }
        if let Some(kind) = failure {
            return Report {
                name: opts.name.clone(),
                schedules,
                exhausted: false,
                failure: Some(Failure {
                    kind,
                    schedule: schedule_id(),
                }),
            };
        }
        if !advance(&mut frames) {
            return Report {
                name: opts.name.clone(),
                schedules,
                exhausted: true,
                failure: None,
            };
        }
        if schedules >= budget {
            return Report {
                name: opts.name.clone(),
                schedules,
                exhausted: false,
                failure: None,
            };
        }
    }
}

/// Seeded random-priority exploration: runs the budgeted number of
/// schedules with seeds `base_seed`, `base_seed + 1`, ….  Any failure is
/// reported with the exact seed, so `replay_seed` reproduces it.
pub fn explore_random(
    opts: &ExploreOpts,
    base_seed: u64,
    mut make: impl FnMut() -> Case,
) -> Report {
    let budget = opts.budget();
    for i in 0..budget {
        let seed = base_seed.wrapping_add(i as u64);
        let case = make();
        let n = case.procs.len();
        let sched = Sched::Random(RandomSched::new(seed, n));
        let (failure, _) = run_once(opts, sched, case);
        if let Some(kind) = failure {
            return Report {
                name: opts.name.clone(),
                schedules: i + 1,
                exhausted: false,
                failure: Some(Failure {
                    kind,
                    schedule: ScheduleId::Seed(seed),
                }),
            };
        }
    }
    Report {
        name: opts.name.clone(),
        schedules: budget,
        exhausted: false,
        failure: None,
    }
}

/// Re-runs the single random schedule identified by `seed`.
pub fn replay_seed(
    opts: &ExploreOpts,
    seed: u64,
    make: impl FnOnce() -> Case,
) -> Option<FailureKind> {
    let case = make();
    let n = case.procs.len();
    let (failure, _) = run_once(opts, Sched::Random(RandomSched::new(seed, n)), case);
    failure
}

/// Re-runs the single DFS schedule identified by its choice list.
pub fn replay_choices(
    opts: &ExploreOpts,
    choices: &[usize],
    make: impl FnOnce() -> Case,
) -> Option<FailureKind> {
    let sched = Sched::Replay(ReplaySched::new(choices.to_vec()));
    let (failure, _) = run_once(opts, sched, make());
    failure
}
