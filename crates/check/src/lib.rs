//! # mpf-check — deterministic schedule exploration for MPF
//!
//! A controlled-concurrency test harness: it runs N logical MPF processes
//! (plain closures) on N OS threads, but a cooperative scheduler serializes
//! them so exactly one makes progress at a time, switching only at the
//! instrumented sync points `mpf_shm::hooks` exports (lock acquire/release,
//! wait-queue wait/notify, pool alloc/free).  Because every racy primitive
//! in the facility funnels through that seam, permuting the switch
//! decisions permutes every interleaving that matters — and the same
//! decision sequence always reproduces the same execution.
//!
//! Two exploration modes:
//!
//! * [`explore_dfs`] — bounded exhaustive depth-first enumeration for small
//!   cases.  Failures carry the choice list ([`ScheduleId::Choices`]);
//!   [`replay_choices`] re-runs exactly that interleaving.
//! * [`explore_random`] — seeded PCT-style random-priority schedules for
//!   larger cases.  Failures carry the seed ([`ScheduleId::Seed`]);
//!   [`replay_seed`] re-runs it.
//!
//! The harness detects panics, deadlocks (nobody runnable while somebody is
//! blocked), livelocks (decision budget exceeded), and final-state check
//! failures (typically `Mpf::check_invariants`).  [`Report::assert_ok`]
//! prints the failing schedule and a replay recipe.
//!
//! ```
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use mpf_shm::HookedMutex;
//! use mpf_check::{explore_dfs, Case, ExploreOpts};
//!
//! // A racy check-then-act: each process reads the counter in one
//! // critical section and writes back in another.  DFS finds the lost
//! // update within a handful of schedules.
//! let report = explore_dfs(&ExploreOpts::new("lost-update"), || {
//!     let counter = Arc::new(HookedMutex::new(0u32));
//!     let final_value = Arc::new(AtomicU32::new(0));
//!     let procs: Vec<Box<dyn FnOnce() + Send>> = (0..2)
//!         .map(|_| {
//!             let c = Arc::clone(&counter);
//!             Box::new(move || {
//!                 let v = *c.lock();
//!                 *c.lock() = v + 1;
//!             }) as Box<dyn FnOnce() + Send>
//!         })
//!         .collect();
//!     let (c, f) = (Arc::clone(&counter), Arc::clone(&final_value));
//!     Case {
//!         procs,
//!         death: None,
//!         check: Box::new(move || {
//!             f.store(*c.lock(), Ordering::Relaxed);
//!             Ok(())
//!         }),
//!     }
//! });
//! assert!(report.failure.is_none());
//! ```
//!
//! The schedule budget scales with the `MPF_CHECK_SCHEDULE_SCALE`
//! environment variable (a float multiplier, default 1.0) so CI can run a
//! bounded sweep on pull requests and a much deeper one nightly without
//! touching the scenarios.

mod controller;
pub mod sched;

mod explore;

pub use explore::{
    explore_dfs, explore_random, replay_choices, replay_seed, Case, DeathPlan, ExploreOpts,
    Failure, FailureKind, Report, ScheduleId,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    use mpf_shm::HookedMutex;

    fn two_procs(f: impl Fn() -> Box<dyn FnOnce() + Send>) -> Vec<Box<dyn FnOnce() + Send>> {
        vec![f(), f()]
    }

    /// Two processes increment under a single critical section: every
    /// schedule ends at 2.
    #[test]
    fn dfs_passes_atomic_increment() {
        let opts = ExploreOpts::new("atomic-increment").max_schedules(512);
        let report = explore_dfs(&opts, || {
            let counter = Arc::new(HookedMutex::new(0u32));
            let procs = two_procs(|| {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    *c.lock() += 1;
                })
            });
            let c = Arc::clone(&counter);
            Case {
                procs,
                death: None,
                check: Box::new(move || {
                    let v = *c.lock();
                    if v == 2 {
                        Ok(())
                    } else {
                        Err(format!("expected 2, got {v}"))
                    }
                }),
            }
        });
        report.assert_ok();
        assert!(report.exhausted, "tree small enough to enumerate fully");
        assert!(report.schedules > 1, "explored more than one interleaving");
    }

    /// Read and write in separate critical sections: DFS must find the
    /// lost-update schedule, and the recorded choices must replay it.
    #[test]
    fn dfs_finds_lost_update_and_replays_it() {
        let make = || {
            let counter = Arc::new(HookedMutex::new(0u32));
            let procs: Vec<Box<dyn FnOnce() + Send>> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    Box::new(move || {
                        let v = *c.lock();
                        *c.lock() = v + 1;
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let c = Arc::clone(&counter);
            Case {
                procs,
                death: None,
                check: Box::new(move || {
                    let v = *c.lock();
                    if v == 2 {
                        Ok(())
                    } else {
                        Err(format!("lost update: expected 2, got {v}"))
                    }
                }),
            }
        };
        let opts = ExploreOpts::new("lost-update").max_schedules(512);
        let report = explore_dfs(&opts, make);
        let failure = report.failure.expect("DFS must find the lost update");
        assert!(
            matches!(failure.kind, FailureKind::CheckFailed(_)),
            "{failure:?}"
        );
        let ScheduleId::Choices(choices) = &failure.schedule else {
            panic!("DFS failures carry choice lists");
        };
        let replayed = replay_choices(&opts, choices, make);
        assert!(
            matches!(replayed, Some(FailureKind::CheckFailed(_))),
            "replay must reproduce the failure, got {replayed:?}"
        );
    }

    /// Classic ABBA deadlock: DFS finds the schedule where each process
    /// holds one lock and blocks on the other.
    #[test]
    fn dfs_detects_abba_deadlock() {
        let opts = ExploreOpts::new("abba").max_schedules(512);
        let report = explore_dfs(&opts, || {
            let a = Arc::new(HookedMutex::new(()));
            let b = Arc::new(HookedMutex::new(()));
            let p0 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                Box::new(move || {
                    let _ga = a.lock();
                    let _gb = b.lock();
                }) as Box<dyn FnOnce() + Send>
            };
            let p1 = {
                let (a, b) = (Arc::clone(&a), Arc::clone(&b));
                Box::new(move || {
                    let _gb = b.lock();
                    let _ga = a.lock();
                }) as Box<dyn FnOnce() + Send>
            };
            Case {
                procs: vec![p0, p1],
                death: None,
                check: Box::new(|| Ok(())),
            }
        });
        let failure = report.failure.expect("DFS must find the ABBA deadlock");
        assert!(
            matches!(failure.kind, FailureKind::Deadlock { .. }),
            "{failure:?}"
        );
    }

    /// A process that retries a hooked lock forever trips the decision
    /// budget instead of hanging the test suite.
    #[test]
    fn step_limit_catches_livelock() {
        let opts = ExploreOpts::new("livelock").max_schedules(1).max_steps(200);
        let report = explore_dfs(&opts, || {
            let m = Arc::new(HookedMutex::new(()));
            let p = {
                let m = Arc::clone(&m);
                Box::new(move || loop {
                    drop(m.lock());
                }) as Box<dyn FnOnce() + Send>
            };
            Case {
                procs: vec![p],
                death: None,
                check: Box::new(|| Ok(())),
            }
        });
        let failure = report.failure.expect("must hit the step limit");
        assert!(
            matches!(failure.kind, FailureKind::StepLimit),
            "{failure:?}"
        );
    }

    /// A scenario panic is caught, attributed to the right process, and
    /// reproducible from its seed.
    #[test]
    fn random_reports_panics_with_replayable_seed() {
        let make = || {
            let flag = Arc::new(AtomicU32::new(0));
            let m = Arc::new(HookedMutex::new(()));
            // Process 1 panics iff it runs its lock section before
            // process 0 sets the flag — schedule-dependent.
            let p0 = {
                let (flag, m) = (Arc::clone(&flag), Arc::clone(&m));
                Box::new(move || {
                    drop(m.lock());
                    flag.store(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send>
            };
            let p1 = {
                let (flag, m) = (Arc::clone(&flag), Arc::clone(&m));
                Box::new(move || {
                    drop(m.lock());
                    assert_eq!(flag.load(Ordering::Relaxed), 1, "ran before p0");
                }) as Box<dyn FnOnce() + Send>
            };
            Case {
                procs: vec![p0, p1],
                death: None,
                check: Box::new(|| Ok(())),
            }
        };
        let opts = ExploreOpts::new("ordered-assert").max_schedules(64);
        let report = explore_random(&opts, 42, make);
        let failure = report.failure.expect("some seed must run p1 first");
        let FailureKind::Panic { thread, .. } = &failure.kind else {
            panic!("expected a panic failure, got {:?}", failure.kind);
        };
        assert_eq!(*thread, 1);
        let ScheduleId::Seed(seed) = failure.schedule else {
            panic!("random failures carry seeds");
        };
        let replayed = replay_seed(&opts, seed, make);
        assert!(
            matches!(replayed, Some(FailureKind::Panic { thread: 1, .. })),
            "seed replay must reproduce the panic, got {replayed:?}"
        );
    }

    /// A mortal single process: DFS must enumerate both the schedules
    /// where it survives (counter reaches 1) and the schedules where it is
    /// killed at some decision point — including before it ever ran.
    #[test]
    fn dfs_enumerates_death_at_every_depth() {
        use std::sync::atomic::AtomicBool;
        let died_runs = Arc::new(AtomicU32::new(0));
        let survived_runs = Arc::new(AtomicU32::new(0));
        let opts = ExploreOpts::new("mortal-increment").max_schedules(512);
        let (dr, sr) = (Arc::clone(&died_runs), Arc::clone(&survived_runs));
        let report = explore_dfs(&opts, move || {
            let counter = Arc::new(HookedMutex::new(0u32));
            let died = Arc::new(AtomicBool::new(false));
            let proc0 = {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    *c.lock() += 1;
                }) as Box<dyn FnOnce() + Send>
            };
            let on_death = {
                let died = Arc::clone(&died);
                Box::new(move |_tid: usize| died.store(true, Ordering::Relaxed))
            };
            let (c, died) = (Arc::clone(&counter), Arc::clone(&died));
            let (dr, sr) = (Arc::clone(&dr), Arc::clone(&sr));
            Case {
                procs: vec![proc0],
                death: Some(DeathPlan {
                    victims: vec![0],
                    on_death,
                }),
                check: Box::new(move || {
                    let v = *c.lock();
                    if died.load(Ordering::Relaxed) {
                        // Killed before or after the increment — both are
                        // legal final states of a sudden death.
                        dr.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    } else if v == 1 {
                        sr.fetch_add(1, Ordering::Relaxed);
                        Ok(())
                    } else {
                        Err(format!("survived but counter is {v}"))
                    }
                }),
            }
        });
        report.assert_ok();
        assert!(report.exhausted, "mortal tree is small enough to enumerate");
        assert!(died_runs.load(Ordering::Relaxed) > 0, "no death schedules");
        assert!(
            survived_runs.load(Ordering::Relaxed) > 0,
            "no survival schedules"
        );
    }

    /// A death-dependent failure (killed before the increment) is found by
    /// DFS and its choice list replays the kill at exactly the recorded
    /// decision.
    #[test]
    fn dfs_death_failures_replay() {
        use std::sync::atomic::AtomicBool;
        let make = || {
            let counter = Arc::new(HookedMutex::new(0u32));
            let died = Arc::new(AtomicBool::new(false));
            let proc0 = {
                let c = Arc::clone(&counter);
                Box::new(move || {
                    *c.lock() += 1;
                }) as Box<dyn FnOnce() + Send>
            };
            let on_death = {
                let died = Arc::clone(&died);
                Box::new(move |_tid: usize| died.store(true, Ordering::Relaxed))
            };
            let (c, died) = (Arc::clone(&counter), Arc::clone(&died));
            Case {
                procs: vec![proc0],
                death: Some(DeathPlan {
                    victims: vec![0],
                    on_death,
                }),
                check: Box::new(move || {
                    if died.load(Ordering::Relaxed) && *c.lock() == 0 {
                        Err("killed before the increment".into())
                    } else {
                        Ok(())
                    }
                }),
            }
        };
        let opts = ExploreOpts::new("death-replay").max_schedules(512);
        let report = explore_dfs(&opts, make);
        let failure = report.failure.expect("DFS must kill before the increment");
        assert!(
            matches!(failure.kind, FailureKind::CheckFailed(_)),
            "{failure:?}"
        );
        let ScheduleId::Choices(choices) = &failure.schedule else {
            panic!("DFS failures carry choice lists");
        };
        let replayed = replay_choices(&opts, choices, make);
        assert!(
            matches!(replayed, Some(FailureKind::CheckFailed(_))),
            "replay must re-kill at the recorded decision, got {replayed:?}"
        );
    }

    /// Random schedules take kill options with their seeded probability:
    /// across a modest seed range, some runs must kill the victim.
    #[test]
    fn random_schedules_take_kills() {
        use std::sync::atomic::AtomicBool;
        let died_runs = Arc::new(AtomicU32::new(0));
        let dr = Arc::clone(&died_runs);
        let opts = ExploreOpts::new("random-kills").max_schedules(64);
        let report = explore_random(&opts, 0x5EED, move || {
            let counter = Arc::new(HookedMutex::new(0u32));
            let died = Arc::new(AtomicBool::new(false));
            let procs: Vec<Box<dyn FnOnce() + Send>> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    Box::new(move || {
                        *c.lock() += 1;
                    }) as Box<dyn FnOnce() + Send>
                })
                .collect();
            let on_death = {
                let died = Arc::clone(&died);
                Box::new(move |_tid: usize| died.store(true, Ordering::Relaxed))
            };
            let (died, dr) = (Arc::clone(&died), Arc::clone(&dr));
            Case {
                procs,
                death: Some(DeathPlan {
                    victims: vec![0],
                    on_death,
                }),
                check: Box::new(move || {
                    if died.load(Ordering::Relaxed) {
                        dr.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(())
                }),
            }
        });
        report.assert_ok();
        assert!(
            died_runs.load(Ordering::Relaxed) > 0,
            "no random schedule took a kill in 64 seeds"
        );
    }

    /// Blocking wait/notify round-trip: a consumer parks on a hooked wait
    /// queue and the producer's notify wakes it — no schedule deadlocks.
    #[test]
    fn waitq_handoff_never_deadlocks() {
        use mpf_shm::waitq::{WaitQueue, WaitStrategy};
        let opts = ExploreOpts::new("waitq-handoff").max_schedules(512);
        let report = explore_dfs(&opts, || {
            let q = Arc::new(WaitQueue::new());
            let data = Arc::new(AtomicU32::new(0));
            let consumer = {
                let (q, data) = (Arc::clone(&q), Arc::clone(&data));
                Box::new(move || loop {
                    let t = q.ticket();
                    if data.load(Ordering::Relaxed) != 0 {
                        break;
                    }
                    q.wait(t, WaitStrategy::Spin);
                }) as Box<dyn FnOnce() + Send>
            };
            let producer = {
                let (q, data) = (Arc::clone(&q), Arc::clone(&data));
                Box::new(move || {
                    data.store(7, Ordering::Relaxed);
                    q.notify_all();
                }) as Box<dyn FnOnce() + Send>
            };
            let data = Arc::clone(&data);
            Case {
                procs: vec![consumer, producer],
                death: None,
                check: Box::new(move || {
                    if data.load(Ordering::Relaxed) == 7 {
                        Ok(())
                    } else {
                        Err("consumer finished without the value".into())
                    }
                }),
            }
        });
        report.assert_ok();
        assert!(report.exhausted);
    }
}
