//! Microbenchmarks of the MPF primitives: loop-back round-trip latency by
//! message size (the per-point cost behind Figure 3), open/close cost, and
//! `check_receive`.

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion, Throughput};
use mpf_bench::{criterion_group, criterion_main};

fn pid(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

fn facility() -> Mpf {
    Mpf::init(
        MpfConfig::new(16, 4)
            .with_block_payload(64)
            .with_total_blocks(4096),
    )
    .expect("init")
}

fn bench_roundtrip(c: &mut Criterion) {
    let mpf = facility();
    let tx = mpf.sender(pid(0), "micro:loop").expect("tx");
    let rx = mpf
        .receiver(pid(0), "micro:loop", Protocol::Fcfs)
        .expect("rx");
    let mut group = c.benchmark_group("loopback_roundtrip");
    for len in [0usize, 16, 128, 1024, 2048] {
        let payload = vec![7u8; len];
        let mut buf = vec![0u8; len.max(1)];
        group.throughput(Throughput::Bytes(len as u64));
        group.bench_with_input(BenchmarkId::from_parameter(len), &len, |b, _| {
            b.iter(|| {
                tx.send(&payload).expect("send");
                rx.recv(&mut buf).expect("recv")
            });
        });
    }
    group.finish();
}

fn bench_open_close(c: &mut Criterion) {
    let mpf = facility();
    c.bench_function("open_close_send", |b| {
        b.iter(|| {
            let id = mpf.open_send(pid(1), "micro:oc").expect("open");
            mpf.close_send(pid(1), id).expect("close");
        });
    });
}

fn bench_check_receive(c: &mut Criterion) {
    let mpf = facility();
    let tx = mpf.sender(pid(0), "micro:chk").expect("tx");
    let rx = mpf
        .receiver(pid(1), "micro:chk", Protocol::Broadcast)
        .expect("rx");
    tx.send(b"waiting").expect("send");
    c.bench_function("check_receive_nonempty", |b| {
        b.iter(|| rx.check().expect("check"));
    });
}

criterion_group!(
    benches,
    bench_roundtrip,
    bench_open_close,
    bench_check_receive
);
criterion_main!(benches);
