//! The paper's closing research question (§5): "One important research
//! issue with these systems is the effect of the parallel programming
//! paradigm (message passing or shared memory) on application
//! performance."
//!
//! Both applications ship in both paradigms; this bench times them
//! head-to-head on the host (plus the sequential baseline).  On a
//! single-core host the parallel variants measure pure paradigm
//! *overhead*; on a multi-core host they measure the paradigm's scaling.

use mpf_apps::gauss_jordan;
use mpf_apps::grid::{self, Grid};
use mpf_apps::linalg::{random_rhs, Matrix};
use mpf_apps::sor;
use mpf_bench::crit::{BenchmarkId, Criterion};
use mpf_bench::{criterion_group, criterion_main};

fn bench_gauss_paradigms(c: &mut Criterion) {
    let n = 32;
    let workers = 2;
    let a = Matrix::random_diag_dominant(n, 404);
    let b = random_rhs(n, 404);
    let mut group = c.benchmark_group("gauss_jordan_32x32");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &(), |bch, ()| {
        bch.iter(|| gauss_jordan::solve_sequential(&a, &b));
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("mpf_message_passing"),
        &(),
        |bch, ()| {
            bch.iter(|| gauss_jordan::solve_mpf(&a, &b, workers));
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("shared_memory"),
        &(),
        |bch, ()| {
            bch.iter(|| gauss_jordan::solve_shared(&a, &b, workers));
        },
    );
    group.finish();
}

fn bench_sor_paradigms(c: &mut Criterion) {
    let p = 17;
    let iters = 40;
    let mut group = c.benchmark_group("sor_17x17_40iters");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::from_parameter("sequential"), &(), |bch, ()| {
        bch.iter(|| {
            let mut g = Grid::zeros(p);
            grid::solve_sequential(&mut g, 0.0, iters)
        });
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("mpf_message_passing_2x2"),
        &(),
        |bch, ()| {
            bch.iter(|| sor::solve_mpf(p, 2, 0.0, iters));
        },
    );
    group.bench_with_input(
        BenchmarkId::from_parameter("shared_memory_4thr"),
        &(),
        |bch, ()| {
            bch.iter(|| sor::solve_shared(p, 4, 0.0, iters));
        },
    );
    group.finish();
}

criterion_group!(benches, bench_gauss_paradigms, bench_sor_paradigms);
criterion_main!(benches);
