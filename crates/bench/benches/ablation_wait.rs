//! Ablation A3 — blocking-wait strategy (spin vs yield vs park).
//!
//! `message_receive` blocks; how it waits decides the wakeup latency and
//! the CPU burned while idle.  Cross-thread ping-pong exposes the
//! difference: every round trip includes one receiver wakeup.

use std::time::{Duration, Instant};

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion};
use mpf_bench::{criterion_group, criterion_main};
use mpf_shm::waitq::WaitStrategy;

fn ping_pong_rounds(mpf: &Mpf, rounds: u64) -> Duration {
    let p0 = ProcessId::from_index(0);
    let p1 = ProcessId::from_index(1);
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            let rx = mpf.receiver(p1, "a3:ping", Protocol::Fcfs).expect("rx");
            let tx = mpf.sender(p1, "a3:pong").expect("tx");
            let mut buf = [0u8; 8];
            for _ in 0..rounds {
                rx.recv(&mut buf).expect("recv");
                tx.send(&buf).expect("send");
            }
        });
        let tx = mpf.sender(p0, "a3:ping").expect("tx");
        let rx = mpf.receiver(p0, "a3:pong", Protocol::Fcfs).expect("rx");
        let mut buf = [0u8; 8];
        for i in 0..rounds {
            tx.send(&i.to_le_bytes()).expect("send");
            rx.recv(&mut buf).expect("recv");
        }
    });
    start.elapsed()
}

fn bench_wait_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("wait_strategy_pingpong");
    group.sample_size(10);
    for (name, strategy) in [
        ("spin", WaitStrategy::Spin),
        ("yield", WaitStrategy::Yield),
        ("park", WaitStrategy::Park),
    ] {
        let mpf = Mpf::init(MpfConfig::new(8, 2).with_wait_strategy(strategy)).expect("init");
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter_custom(|iters| ping_pong_rounds(&mpf, iters));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wait_strategies);
criterion_main!(benches);
