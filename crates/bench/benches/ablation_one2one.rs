//! Ablation A5 — one-to-one lock-free channel vs the general LNVC.
//!
//! The paper's §5: "if only one-to-one communication is implemented, all
//! locking associated with message handling is removed."  This bench
//! quantifies what the generality of LNVCs costs on a pure two-party
//! stream.

use std::time::{Duration, Instant};

use mpf::one2one::one2one;
use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion, Throughput};
use mpf_bench::{criterion_group, criterion_main};

const LEN: usize = 128;

fn lnvc_stream(mpf: &Mpf, rounds: u64) -> Duration {
    let p0 = ProcessId::from_index(0);
    let p1 = ProcessId::from_index(1);
    // Open the receive side before the sender can finish and close
    // (paper §3.2: closing the last connection discards the stream).
    let rx = mpf.receiver(p1, "a5:chan", Protocol::Fcfs).expect("rx");
    let start = Instant::now();
    std::thread::scope(|s| {
        let rx = &rx;
        s.spawn(move || {
            let mut buf = [0u8; LEN];
            for _ in 0..rounds {
                rx.recv(&mut buf).expect("recv");
            }
        });
        let tx = mpf.sender(p0, "a5:chan").expect("tx");
        let payload = [4u8; LEN];
        for _ in 0..rounds {
            tx.send(&payload).expect("send");
        }
    });
    start.elapsed()
}

fn one2one_stream(rounds: u64) -> Duration {
    let (mut tx, mut rx) = one2one(64 * 1024);
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut buf = [0u8; LEN];
            for _ in 0..rounds {
                rx.recv(&mut buf).expect("recv");
            }
        });
        let payload = [4u8; LEN];
        for _ in 0..rounds {
            tx.send(&payload).expect("send");
        }
    });
    start.elapsed()
}

fn bench_one2one_vs_lnvc(c: &mut Criterion) {
    let mut group = c.benchmark_group("one2one_vs_lnvc_128B_stream");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(LEN as u64));

    let mpf = Mpf::init(
        MpfConfig::new(4, 2)
            .with_block_payload(64)
            .with_total_blocks(8192),
    )
    .expect("init");
    group.bench_with_input(BenchmarkId::from_parameter("general_lnvc"), &(), |b, ()| {
        b.iter_custom(|iters| lnvc_stream(&mpf, iters))
    });
    group.bench_with_input(
        BenchmarkId::from_parameter("one2one_lock_free"),
        &(),
        |b, ()| b.iter_custom(one2one_stream),
    );
    group.finish();
}

criterion_group!(benches, bench_one2one_vs_lnvc);
criterion_main!(benches);
