//! Ablation A6 — zero-copy receive (`message_receive_scan`) vs the
//! buffered receive.
//!
//! §5: "copying of data from a sending buffer to a linked message buffer
//! and then to the receiving buffer is unnecessary; direct data transfer
//! is possible."  The scan API removes the *second* copy; this bench
//! measures what that is worth per message size (the first copy, into
//! blocks, is inherent to the asynchronous model).

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion, Throughput};
use mpf_bench::{criterion_group, criterion_main};

fn bench_zero_copy(c: &mut Criterion) {
    let mpf = Mpf::init(
        MpfConfig::new(4, 2)
            .with_block_payload(64)
            .with_total_blocks(8192),
    )
    .expect("init");
    let p = ProcessId::from_index(0);
    let tx = mpf.sender(p, "a6").expect("tx");
    let rx = mpf.receiver(p, "a6", Protocol::Fcfs).expect("rx");

    for len in [128usize, 1024, 4096] {
        let payload = vec![6u8; len];
        let mut group = c.benchmark_group(format!("zero_copy_{len}B"));
        group.throughput(Throughput::Bytes(len as u64));
        let mut buf = vec![0u8; len];
        group.bench_with_input(
            BenchmarkId::from_parameter("buffered_recv"),
            &(),
            |b, ()| {
                b.iter(|| {
                    tx.send(&payload).expect("send");
                    rx.recv(&mut buf).expect("recv")
                });
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter("scan_recv"), &(), |b, ()| {
            b.iter(|| {
                tx.send(&payload).expect("send");
                let mut checksum = 0u64;
                rx.recv_scan(|chunk| {
                    checksum = checksum.wrapping_add(chunk.iter().map(|&x| x as u64).sum::<u64>());
                })
                .expect("scan");
                checksum
            });
        });
        group.finish();
    }
}

criterion_group!(benches, bench_zero_copy);
criterion_main!(benches);
