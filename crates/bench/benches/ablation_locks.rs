//! Ablation A2 — LNVC lock implementation (spin vs ticket vs OS mutex).
//!
//! The paper's substrate was a busy-wait lock; §5 observes that restricted
//! protocols could drop locking altogether.  This bench isolates the lock
//! choice on the loop-back path (uncontended) — the contended case is what
//! `fig4_fcfs --sim` models.

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion};
use mpf_bench::{criterion_group, criterion_main};
use mpf_shm::lock::LockKind;

fn bench_locks(c: &mut Criterion) {
    let mut group = c.benchmark_group("lock_kind_128B_roundtrip");
    for (name, kind) in [
        ("spin", LockKind::Spin),
        ("ticket", LockKind::Ticket),
        ("os", LockKind::Os),
    ] {
        let mpf = Mpf::init(MpfConfig::new(4, 2).with_lock_kind(kind)).expect("init");
        let p = ProcessId::from_index(0);
        let tx = mpf.sender(p, "a2").expect("tx");
        let rx = mpf.receiver(p, "a2", Protocol::Fcfs).expect("rx");
        let payload = [2u8; 128];
        let mut buf = [0u8; 128];
        group.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                tx.send(&payload).expect("send");
                rx.recv(&mut buf).expect("recv")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_locks);
criterion_main!(benches);
