//! Ablation A1 — message block size.
//!
//! The paper ran everything with 10-byte blocks (§3.1 footnote 4).  Small
//! blocks amortize poorly: a 1024-byte message costs 103 free-list pops
//! and link stores.  This bench sweeps the block payload to quantify that
//! design choice.

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion, Throughput};
use mpf_bench::{criterion_group, criterion_main};

fn bench_block_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("block_size_1024B_roundtrip");
    group.throughput(Throughput::Bytes(1024));
    for block in [10usize, 64, 256, 1024] {
        let mpf = Mpf::init(
            MpfConfig::new(4, 2)
                .with_block_payload(block)
                .with_total_blocks(8192),
        )
        .expect("init");
        let p = ProcessId::from_index(0);
        let tx = mpf.sender(p, "a1").expect("tx");
        let rx = mpf.receiver(p, "a1", Protocol::Fcfs).expect("rx");
        let payload = vec![1u8; 1024];
        let mut buf = vec![0u8; 1024];
        group.bench_with_input(BenchmarkId::new("paper_10B_vs", block), &block, |b, _| {
            b.iter(|| {
                tx.send(&payload).expect("send");
                rx.recv(&mut buf).expect("recv")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_block_sizes);
criterion_main!(benches);
