//! Ablation A4 — synchronous (single-copy) vs asynchronous (double-copy)
//! message passing.
//!
//! The paper's §5: "to support synchronous message passing, copying of
//! data from a sending buffer to a linked message buffer and then to the
//! receiving buffer is unnecessary; direct data transfer is possible."
//! This bench measures that claim: a rendezvous transfer against the
//! general LNVC path, cross-thread, for a copy-dominated message size.

use std::time::{Duration, Instant};

use mpf::sync_channel::Rendezvous;
use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_bench::crit::{BenchmarkId, Criterion, Throughput};
use mpf_bench::{criterion_group, criterion_main};

const LEN: usize = 2048;

fn async_rounds(mpf: &Mpf, rounds: u64) -> Duration {
    let p0 = ProcessId::from_index(0);
    let p1 = ProcessId::from_index(1);
    // Open the receive side first (paper §3.2; see ablation_one2one).
    let rx = mpf.receiver(p1, "a4:chan", Protocol::Fcfs).expect("rx");
    let start = Instant::now();
    std::thread::scope(|s| {
        let rx = &rx;
        s.spawn(move || {
            let mut buf = [0u8; LEN];
            for _ in 0..rounds {
                rx.recv(&mut buf).expect("recv");
            }
        });
        let tx = mpf.sender(p0, "a4:chan").expect("tx");
        let payload = [9u8; LEN];
        for _ in 0..rounds {
            tx.send(&payload).expect("send");
        }
    });
    start.elapsed()
}

fn sync_rounds(r: &Rendezvous, rounds: u64) -> Duration {
    let start = Instant::now();
    std::thread::scope(|s| {
        s.spawn(|| {
            let mut buf = [0u8; LEN];
            for _ in 0..rounds {
                r.recv(&mut buf).expect("recv");
            }
        });
        let payload = [9u8; LEN];
        for _ in 0..rounds {
            r.send(&payload);
        }
    });
    start.elapsed()
}

fn bench_sync_vs_async(c: &mut Criterion) {
    let mut group = c.benchmark_group("sync_vs_async_2048B");
    group.sample_size(10);
    group.throughput(Throughput::Bytes(LEN as u64));

    let mpf = Mpf::init(
        MpfConfig::new(4, 2)
            .with_block_payload(64)
            .with_total_blocks(8192),
    )
    .expect("init");
    group.bench_with_input(
        BenchmarkId::from_parameter("async_lnvc_double_copy"),
        &(),
        |b, ()| b.iter_custom(|iters| async_rounds(&mpf, iters)),
    );

    let rendezvous = Rendezvous::default();
    group.bench_with_input(
        BenchmarkId::from_parameter("sync_rendezvous_single_copy"),
        &(),
        |b, ()| b.iter_custom(|iters| sync_rounds(&rendezvous, iters)),
    );
    group.finish();
}

criterion_group!(benches, bench_sync_vs_async);
criterion_main!(benches);
