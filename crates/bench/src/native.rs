//! Thread-backed measurements of the real `mpf` library (native mode).
//!
//! These reproduce the paper's benchmark *programs*; the numbers they
//! yield are a property of the host (core count, memory hierarchy), not of
//! the Balance 21000 — see the crate docs.  Termination uses the classic
//! poison-message idiom: after the payload stream, the sender emits one
//! zero-length message per receiver; a receiver that consumes a poison
//! leaves the conversation (every payload message in these benchmarks is
//! non-empty, so zero length is unambiguous).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_shm::barrier::SpinBarrier;
use mpf_shm::process::run_processes;
use mpf_shm::SmallRng;

fn config(processes: u32) -> MpfConfig {
    MpfConfig::new(64.max(processes * 2), processes + 1)
        .with_block_payload(64)
        .with_total_blocks(16 * 1024)
        .with_max_messages(4096)
        // The fully connected `random` pattern opens ~P² send connections.
        .with_max_connections(processes * processes + 8 * processes + 64)
}

/// `base`: loop-back send/receive of `iters` messages of `len` bytes on a
/// single process.  Returns bytes/second (Figure 3's metric).
pub fn base_throughput(len: usize, iters: u64) -> f64 {
    let mpf = Mpf::init(config(1)).expect("init");
    let p = ProcessId::from_index(0);
    let tx = mpf.sender(p, "bench:base").expect("tx");
    let rx = mpf.receiver(p, "bench:base", Protocol::Fcfs).expect("rx");
    let payload = vec![0xA5u8; len];
    let mut buf = vec![0u8; len.max(1)];
    let start = Instant::now();
    for _ in 0..iters {
        tx.send(&payload).expect("send");
        rx.recv(&mut buf).expect("recv");
    }
    let secs = start.elapsed().as_secs_f64();
    (iters as usize * len) as f64 / secs
}

/// `fcfs`: one sender, `receivers` FCFS receivers.  Returns sent-side
/// bytes/second (Figure 4's metric).
pub fn fcfs_throughput(len: usize, receivers: u32, msgs: u64) -> f64 {
    assert!(len >= 1, "poison messages are zero-length");
    let mpf = Mpf::init(config(receivers + 1)).expect("init");
    let ready = SpinBarrier::new(receivers + 1);
    let start = Instant::now();
    run_processes(receivers as usize + 1, |pid| {
        if pid.index() == 0 {
            // All receivers must connect before the sender can finish and
            // close — otherwise the close deletes the conversation and
            // discards the stream (the paper's §3.2 hazard, very real on
            // a single-CPU host where the sender can run to completion
            // before any receiver is scheduled).
            ready.wait();
            let tx = mpf.sender(pid, "bench:fcfs").expect("tx");
            let payload = vec![0x5Au8; len];
            for _ in 0..msgs {
                tx.send(&payload).expect("send");
            }
            for _ in 0..receivers {
                tx.send(&[]).expect("poison");
            }
        } else {
            let rx = mpf.receiver(pid, "bench:fcfs", Protocol::Fcfs).expect("rx");
            ready.wait();
            loop {
                let msg = rx.recv_vec().expect("recv");
                if msg.is_empty() {
                    break;
                }
            }
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (msgs as usize * len) as f64 / secs
}

/// `broadcast`: one sender, `receivers` BROADCAST receivers.  Returns
/// *effective* (delivered) bytes/second (Figure 5's metric).
pub fn broadcast_throughput(len: usize, receivers: u32, msgs: u64) -> f64 {
    assert!(len >= 1);
    let mpf = Mpf::init(config(receivers + 1)).expect("init");
    let ready = SpinBarrier::new(receivers + 1);
    let start = Instant::now();
    run_processes(receivers as usize + 1, |pid| {
        if pid.index() == 0 {
            // Receivers must join before the first send or they miss the
            // stream (late broadcast joiners start at the tail).
            ready.wait();
            let tx = mpf.sender(pid, "bench:bcast").expect("tx");
            let payload = vec![0x3Cu8; len];
            for _ in 0..msgs {
                tx.send(&payload).expect("send");
            }
            tx.send(&[]).expect("poison");
        } else {
            let rx = mpf
                .receiver(pid, "bench:bcast", Protocol::Broadcast)
                .expect("rx");
            ready.wait();
            loop {
                let msg = rx.recv_vec().expect("recv");
                if msg.is_empty() {
                    break;
                }
            }
        }
    });
    let secs = start.elapsed().as_secs_f64();
    (receivers as u64 * msgs) as f64 * len as f64 / secs
}

/// `random`: `procs` fully connected processes, random destinations,
/// drain-after-send.  Returns sent-side bytes/second (Figure 6's metric).
pub fn random_throughput(len: usize, procs: u32, msgs_per_proc: u64, seed: u64) -> f64 {
    assert!(procs >= 2);
    let mpf = Mpf::init(config(procs)).expect("init");
    let setup = SpinBarrier::new(procs);
    let sent_done = SpinBarrier::new(procs);
    let bytes_sent = AtomicU64::new(0);
    let start = Instant::now();
    run_processes(procs as usize, |pid| {
        let me = pid.index();
        // Everyone opens a receive on its own LNVC and a send on every
        // other process's LNVC (the fully connected pattern).
        let rx = mpf
            .receiver(pid, &format!("bench:rand:{me}"), Protocol::Fcfs)
            .expect("rx");
        let txs: Vec<_> = (0..procs as usize)
            .filter(|&d| d != me)
            .map(|d| mpf.sender(pid, &format!("bench:rand:{d}")).expect("tx"))
            .collect();
        setup.wait();

        let mut rng = SmallRng::seed_from_u64(seed ^ (me as u64) << 32);
        let payload = vec![me as u8; len];
        let mut buf = vec![0u8; len.max(1)];
        for _ in 0..msgs_per_proc {
            let dest = rng.gen_range(0..txs.len());
            txs[dest].send(&payload).expect("send");
            bytes_sent.fetch_add(len as u64, Ordering::Relaxed);
            // "Each time a process executes a message_send(), it then
            // receives all messages that are queued in its LNVC."
            while rx.try_recv(&mut buf).expect("try_recv").is_some() {}
        }
        sent_done.wait();
        // All sends are enqueued; drain what's left for us.
        while rx.try_recv(&mut buf).expect("drain").is_some() {}
    });
    let secs = start.elapsed().as_secs_f64();
    bytes_sent.load(Ordering::Relaxed) as f64 / secs
}

/// Gauss-Jordan native speedup: sequential time over MPF time (Figure 7's
/// metric, measured on the host).
pub fn gauss_speedup(n: usize, workers: usize, seed: u64) -> f64 {
    use mpf_apps::gauss_jordan::{solve_mpf, solve_sequential};
    use mpf_apps::linalg::{random_rhs, Matrix};
    let a = Matrix::random_diag_dominant(n, seed);
    let b = random_rhs(n, seed);

    let t0 = Instant::now();
    let _x = solve_sequential(&a, &b);
    let seq = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let _x = solve_mpf(&a, &b, workers);
    let par = t1.elapsed().as_secs_f64();
    seq / par
}

/// SOR native per-iteration time in seconds for an `n × n` process grid
/// (Figure 8 compares these across `n`).
pub fn sor_iteration_secs(p: usize, n: usize, iters: usize) -> f64 {
    use mpf_apps::sor::solve_mpf;
    let t = Instant::now();
    let run = solve_mpf(p, n, 0.0, iters);
    debug_assert_eq!(run.iters, iters);
    t.elapsed().as_secs_f64() / iters as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_produces_positive_throughput() {
        let t = base_throughput(128, 50);
        assert!(t > 0.0);
    }

    #[test]
    fn fcfs_runs_with_multiple_receivers() {
        let t = fcfs_throughput(64, 3, 40);
        assert!(t > 0.0);
    }

    #[test]
    fn broadcast_effective_exceeds_sent() {
        // 4 receivers each get every byte: delivered = 4 × sent.
        let t = broadcast_throughput(64, 4, 30);
        assert!(t > 0.0);
    }

    #[test]
    fn random_runs_fully_connected() {
        let t = random_throughput(32, 4, 20, 99);
        assert!(t > 0.0);
    }

    #[test]
    fn gauss_speedup_is_finite() {
        let s = gauss_speedup(12, 2, 5);
        assert!(s.is_finite() && s > 0.0);
    }

    #[test]
    fn sor_iteration_time_positive() {
        let t = sor_iteration_secs(9, 2, 5);
        assert!(t > 0.0);
    }
}
