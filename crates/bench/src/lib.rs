//! # mpf-bench — the figure-regeneration harness
//!
//! For every figure in the paper's evaluation there is a binary that
//! reprints its series (`fig3_base` … `fig8_sor`, plus `all_figures`).
//! Each experiment runs in two modes:
//!
//! * **sim** — on the `mpf-sim` Balance 21000 model, which reproduces the
//!   paper's curve *shapes* (contention declines, broadcast scaling,
//!   paging cliff) and magnitudes;
//! * **native** — the real `mpf` library driven by OS threads on the host.
//!   Native numbers depend on the host's core count (the reproduction
//!   machine may have a single core, where parallel speedup is
//!   impossible); they validate functionality and relative ordering, not
//!   the paper's absolute values.
//!
//! The [`native`] module contains the thread-backed measurement routines;
//! [`report`] prints series as aligned tables.

pub mod aio;
pub mod crit;
pub mod native;
pub mod replay;
pub mod report;

pub use mpf_sim::figures::Series;
