//! Plain-text rendering of figure series, plus the `--json <path>`
//! machine-readable writer shared by the figure binaries.

use std::path::PathBuf;

use mpf_sim::figures::Series;

/// Prints one figure's series as an aligned table:
///
/// ```text
/// # Figure 4 (fcfs): throughput vs receivers [sim]
/// x          16 byte messages   128 byte messages  1024 byte messages
/// 1          7812               21067              44321
/// ```
pub fn print_series(title: &str, series: &[Series]) {
    println!("# {title}");
    if series.is_empty() {
        println!("(no data)");
        return;
    }
    let mut header = format!("{:<10}", "x");
    for s in series {
        header.push_str(&format!("{:>22}", s.label));
    }
    println!("{header}");
    let rows = series[0].points.len();
    for r in 0..rows {
        let mut line = format!("{:<10}", trim_float(series[0].points[r].0));
        for s in series {
            let y = s.points.get(r).map_or(f64::NAN, |p| p.1);
            line.push_str(&format!("{:>22}", trim_float(y)));
        }
        println!("{line}");
    }
    println!();
}

/// Formats a number compactly: integers without decimals, small values
/// with three significant decimals.
pub fn trim_float(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.abs() >= 100.0 || (v.fract() == 0.0 && v.abs() < 1e15) {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Parses the common `--sim` / `--native` / `--both` flags; defaults to
/// sim-only (fast, reproduces the paper's shapes deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// Run the Balance 21000 simulation.
    pub sim: bool,
    /// Run the native (thread-backed) measurement.
    pub native: bool,
}

impl Mode {
    /// Parses process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses a flag list.
    pub fn parse(args: &[String]) -> Self {
        let native = args.iter().any(|a| a == "--native" || a == "--both");
        let sim = args.iter().any(|a| a == "--sim" || a == "--both") || !native;
        Self { sim, native }
    }
}

/// Accumulates every figure rendered during one run and writes them as a
/// single JSON document (hand-rolled — the workspace is dependency-free).
///
/// ```text
/// {"figures":[{"title":"...","series":[{"label":"...","points":[[16,1.5e6],...]}]}],
///  "extra":{"latency_ns":{...}}}
/// ```
#[derive(Debug)]
pub struct JsonReport {
    path: PathBuf,
    figures: Vec<String>,
    extra: Vec<(String, String)>,
}

impl JsonReport {
    /// Parses `--json <path>` from the process arguments; `None` when the
    /// flag is absent (text output only).
    pub fn from_args() -> Option<Self> {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let i = args.iter().position(|a| a == "--json")?;
        let path = args.get(i + 1)?;
        if path.starts_with('-') {
            return None;
        }
        Some(Self {
            path: PathBuf::from(path),
            figures: Vec::new(),
            extra: Vec::new(),
        })
    }

    /// Targets an explicit path — for binaries whose contract is "always
    /// write a report here" rather than an optional `--json` flag.
    pub fn at(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            figures: Vec::new(),
            extra: Vec::new(),
        }
    }

    /// Records one figure (same inputs as [`print_series`]).
    pub fn add(&mut self, title: &str, series: &[Series]) {
        let rendered = series
            .iter()
            .map(|s| {
                let pts = s
                    .points
                    .iter()
                    .map(|(x, y)| format!("[{},{}]", json_num(*x), json_num(*y)))
                    .collect::<Vec<_>>()
                    .join(",");
                format!("{{\"label\":{},\"points\":[{pts}]}}", json_str(&s.label))
            })
            .collect::<Vec<_>>()
            .join(",");
        self.figures.push(format!(
            "{{\"title\":{},\"series\":[{rendered}]}}",
            json_str(title)
        ));
    }

    /// Attaches an arbitrary pre-rendered JSON value under a top-level
    /// `extra` key (e.g. latency percentiles).
    pub fn add_extra(&mut self, key: &str, raw_json: String) {
        self.extra.push((key.to_string(), raw_json));
    }

    /// Writes the document; returns the path written.
    pub fn write(self) -> std::io::Result<PathBuf> {
        let extras = self
            .extra
            .iter()
            .map(|(k, v)| format!("{}:{v}", json_str(k)))
            .collect::<Vec<_>>()
            .join(",");
        let doc = format!(
            "{{\"figures\":[{}],\"extra\":{{{extras}}}}}\n",
            self.figures.join(",")
        );
        std::fs::write(&self.path, doc)?;
        Ok(self.path)
    }
}

/// JSON number: finite values as-is, NaN/inf as null (JSON has neither).
pub fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// JSON string escape.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_renders_valid_document() {
        let mut r = JsonReport {
            path: std::env::temp_dir().join(format!("bench-json-{}.json", std::process::id())),
            figures: Vec::new(),
            extra: Vec::new(),
        };
        r.add(
            "fig \"3\"",
            &[Series {
                label: "a\nb".into(),
                points: vec![(16.0, 1.5e6), (64.0, f64::NAN)],
            }],
        );
        r.add_extra("latency_ns", "{\"p50\":120}".into());
        let path = r.write().unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert!(doc.contains("\"fig \\\"3\\\"\""));
        assert!(doc.contains("[16,1500000]"));
        assert!(doc.contains("[64,null]"));
        assert!(doc.contains("\"latency_ns\":{\"p50\":120}"));
        // Balanced braces/brackets — cheap structural sanity without a parser.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                doc.matches(open).count(),
                doc.matches(close).count(),
                "unbalanced {open}{close} in {doc}"
            );
        }
    }

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(25000.4), "25000");
        assert_eq!(trim_float(1.2345), "1.234");
        assert_eq!(trim_float(4.0), "4");
        assert_eq!(trim_float(f64::NAN), "-");
    }

    #[test]
    fn mode_defaults_to_sim() {
        let m = Mode::parse(&[]);
        assert!(m.sim && !m.native);
    }

    #[test]
    fn mode_flags() {
        let native = Mode::parse(&["--native".into()]);
        assert!(!native.sim && native.native);
        let both = Mode::parse(&["--both".into()]);
        assert!(both.sim && both.native);
    }

    #[test]
    fn print_series_smoke() {
        // Just exercise the formatting path.
        print_series(
            "test",
            &[Series {
                label: "a".into(),
                points: vec![(1.0, 10.0), (2.0, 20.0)],
            }],
        );
        print_series("empty", &[]);
    }
}
