//! Plain-text rendering of figure series.

use mpf_sim::figures::Series;

/// Prints one figure's series as an aligned table:
///
/// ```text
/// # Figure 4 (fcfs): throughput vs receivers [sim]
/// x          16 byte messages   128 byte messages  1024 byte messages
/// 1          7812               21067              44321
/// ```
pub fn print_series(title: &str, series: &[Series]) {
    println!("# {title}");
    if series.is_empty() {
        println!("(no data)");
        return;
    }
    let mut header = format!("{:<10}", "x");
    for s in series {
        header.push_str(&format!("{:>22}", s.label));
    }
    println!("{header}");
    let rows = series[0].points.len();
    for r in 0..rows {
        let mut line = format!("{:<10}", trim_float(series[0].points[r].0));
        for s in series {
            let y = s.points.get(r).map_or(f64::NAN, |p| p.1);
            line.push_str(&format!("{:>22}", trim_float(y)));
        }
        println!("{line}");
    }
    println!();
}

/// Formats a number compactly: integers without decimals, small values
/// with three significant decimals.
pub fn trim_float(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else if v.abs() >= 100.0 || (v.fract() == 0.0 && v.abs() < 1e15) {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Parses the common `--sim` / `--native` / `--both` flags; defaults to
/// sim-only (fast, reproduces the paper's shapes deterministically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Mode {
    /// Run the Balance 21000 simulation.
    pub sim: bool,
    /// Run the native (thread-backed) measurement.
    pub native: bool,
}

impl Mode {
    /// Parses process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        Self::parse(&args)
    }

    /// Parses a flag list.
    pub fn parse(args: &[String]) -> Self {
        let native = args.iter().any(|a| a == "--native" || a == "--both");
        let sim = args.iter().any(|a| a == "--sim" || a == "--both") || !native;
        Self { sim, native }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trim_float_formats() {
        assert_eq!(trim_float(25000.4), "25000");
        assert_eq!(trim_float(1.2345), "1.234");
        assert_eq!(trim_float(4.0), "4");
        assert_eq!(trim_float(f64::NAN), "-");
    }

    #[test]
    fn mode_defaults_to_sim() {
        let m = Mode::parse(&[]);
        assert!(m.sim && !m.native);
    }

    #[test]
    fn mode_flags() {
        let native = Mode::parse(&["--native".into()]);
        assert!(!native.sim && native.native);
        let both = Mode::parse(&["--both".into()]);
        assert!(both.sim && both.native);
    }

    #[test]
    fn print_series_smoke() {
        // Just exercise the formatting path.
        print_series(
            "test",
            &[Series {
                label: "a".into(),
                points: vec![(1.0, 10.0), (2.0, 20.0)],
            }],
        );
        print_series("empty", &[]);
    }
}
