//! Figure 3 on the multi-process backend: throughput vs message length.
//!
//! Three series, same x-axis as `fig3_base`:
//!
//! * `threads`  — the in-process thread backend (`mpf::Mpf`), identical
//!   to `fig3_base --native`;
//! * `ipc loop-back` — the shared-region backend (`mpf_ipc::IpcMpf`)
//!   with sender and receiver in ONE process, isolating the cost of the
//!   offset-addressed region + `IpcLock`/futex primitives;
//! * `ipc 2-process` — sender and receiver in genuinely separate OS
//!   processes (the receiver is this binary re-exec'd with `--worker`),
//!   the configuration the paper actually measured.
//!
//! Usage: `fig3_ipc [--msgs N] [--no-telemetry] [--json <path>]`
//! (default 2000 messages per point). `--no-telemetry` creates the
//! region with recording off, for measuring the telemetry overhead;
//! `--json` additionally writes the series plus loop-back latency
//! percentiles (from the in-region histogram) machine-readably.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use mpf::{MpfConfig, MpfError, Protocol};
use mpf_bench::report::{json_num, print_series, JsonReport};
use mpf_bench::{native, Series};
use mpf_ipc::IpcMpf;
use mpf_shm::telemetry::HistSnapshot;

const LENGTHS: [usize; 8] = [16, 64, 128, 256, 512, 1024, 1536, 2048];
const REGION_ENV: &str = "MPF_FIG3_REGION";
const ROUNDS_ENV: &str = "MPF_FIG3_ROUNDS";

fn region_config(telemetry: bool) -> MpfConfig {
    // `--no-telemetry` is the undisturbed baseline, so it switches off
    // causal tracing too; the default configuration carries both, which
    // is what the measured observability overhead covers.
    MpfConfig::new(4, 4)
        .with_block_payload(256)
        .with_total_blocks(1024)
        .with_max_messages(256)
        .with_max_connections(8)
        .with_telemetry(telemetry)
        .trace_sample_rate(u32::from(telemetry))
}

/// Sends with back-pressure: pool exhaustion usually means the receiver
/// is behind, so spin until a slot frees up — but a receiver that DIED
/// will never drain the pools, so sweep for dead peers while spinning;
/// the sweep poisons the conversation and the next send reports
/// `PeerDied` instead of hanging this process forever.
fn send_retry(m: &IpcMpf, id: mpf_ipc::IpcLnvcId, payload: &[u8]) {
    loop {
        match m.message_send(id, payload) {
            Ok(()) => return,
            Err(MpfError::MessagesExhausted) | Err(MpfError::BlocksExhausted) => {
                m.sweep_dead_peers();
                std::thread::yield_now();
            }
            Err(e) => panic!("send failed: {e}"),
        }
    }
}

/// In-process loop-back over the shared region (alternating send/recv,
/// exactly the paper's `base` loop). Also returns the region's
/// send-to-receive latency histogram (empty when telemetry is off).
fn ipc_loopback_throughput(len: usize, iters: u64, telemetry: bool) -> (f64, HistSnapshot) {
    let m = IpcMpf::create(
        &format!("fig3-loop-{}", std::process::id()),
        &region_config(telemetry),
    )
    .expect("create region");
    let tx = m.open_send("bench").expect("tx");
    let rx = m.open_receive("bench", Protocol::Fcfs).expect("rx");
    let payload = vec![0xA5u8; len];
    let mut buf = vec![0u8; len.max(1)];
    let start = Instant::now();
    for _ in 0..iters {
        m.message_send(tx, &payload).expect("send");
        m.message_receive(rx, &mut buf).expect("recv");
    }
    let secs = start.elapsed().as_secs_f64();
    let tput = (iters as usize * len) as f64 / secs;
    (tput, m.telemetry_snapshot().latency_hist)
}

/// Renders one latency histogram as a JSON object of percentiles.
fn latency_json(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}",
        h.count,
        json_num(h.mean()),
        h.percentile(0.50),
        h.percentile(0.90),
        h.percentile(0.99),
        h.max
    )
}

/// Worker half of the 2-process measurement: drain `bench`, ack each
/// round (a 1-byte message marks end-of-round) on `ack`.
fn worker_main(region: &str, rounds: usize) {
    let m = IpcMpf::attach(region).expect("attach");
    let rx = m.open_receive("bench", Protocol::Fcfs).expect("rx");
    let ack = m.open_send("ack").expect("ack tx");
    let mut buf = vec![0u8; 4096];
    for _ in 0..rounds {
        loop {
            let n = m
                .message_receive_timeout(rx, &mut buf, Duration::from_secs(60))
                .expect("worker recv");
            if n == 1 {
                break;
            }
        }
        send_retry(&m, ack, b"ok");
    }
}

/// Parent half: per length, time `msgs` sends plus the worker's ack.
fn ipc_two_process_series(msgs: u64, telemetry: bool) -> Series {
    let region = format!("fig3-xp-{}", std::process::id());
    let m = IpcMpf::create(&region, &region_config(telemetry)).expect("create region");
    let tx = m.open_send("bench").expect("tx");
    let ack = m.open_receive("ack", Protocol::Fcfs).expect("ack rx");

    let mut worker = Command::new(std::env::current_exe().expect("current_exe"))
        .arg("--worker")
        .env(REGION_ENV, &region)
        .env(ROUNDS_ENV, LENGTHS.len().to_string())
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn worker");

    let mut points = Vec::new();
    let mut buf = [0u8; 8];
    for &len in &LENGTHS {
        let payload = vec![0x5Au8; len];
        let start = Instant::now();
        for _ in 0..msgs {
            send_retry(&m, tx, &payload);
        }
        send_retry(&m, tx, &[0u8; 1]); // end-of-round marker
        m.message_receive_timeout(ack, &mut buf, Duration::from_secs(60))
            .expect("ack");
        let secs = start.elapsed().as_secs_f64();
        points.push((len as f64, (msgs as usize * len) as f64 / secs));
    }
    let status = worker.wait().expect("reap worker");
    assert!(status.success(), "worker exited with {status}");
    Series {
        label: "ipc 2-process".to_string(),
        points,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--worker") {
        let region = std::env::var(REGION_ENV).expect(REGION_ENV);
        let rounds: usize = std::env::var(ROUNDS_ENV)
            .expect(ROUNDS_ENV)
            .parse()
            .unwrap();
        worker_main(&region, rounds);
        return;
    }
    let msgs: u64 = args
        .iter()
        .position(|a| a == "--msgs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--msgs N"))
        .unwrap_or(2000);
    let telemetry = !args.iter().any(|a| a == "--no-telemetry");
    let mut json = JsonReport::from_args();

    let threads = Series {
        label: "threads".to_string(),
        points: LENGTHS
            .iter()
            .map(|&len| (len as f64, native::base_throughput(len, msgs)))
            .collect(),
    };
    let mut latencies = Vec::new();
    let ipc_loop = Series {
        label: "ipc loop-back".to_string(),
        points: LENGTHS
            .iter()
            .map(|&len| {
                let (tput, lat) = ipc_loopback_throughput(len, msgs, telemetry);
                latencies.push((len, lat));
                (len as f64, tput)
            })
            .collect(),
    };
    let ipc_xp = ipc_two_process_series(msgs, telemetry);
    let title = format!(
        "Figure 3 on the process backend: throughput (bytes/s) vs message length [telemetry {}]",
        if telemetry { "on" } else { "off" }
    );
    let series = [threads, ipc_loop, ipc_xp];
    print_series(&title, &series);
    if telemetry {
        println!("# loop-back send-to-receive latency (ns, in-region histogram)");
        for (len, lat) in &latencies {
            println!(
                "len {len:<6} p50 {:<8} p90 {:<8} p99 {:<8} max {}",
                lat.percentile(0.50),
                lat.percentile(0.90),
                lat.percentile(0.99),
                lat.max
            );
        }
        println!();
    }
    if let Some(j) = json.as_mut() {
        j.add(&title, &series);
        j.add_extra("telemetry", format!("{telemetry}"));
        j.add_extra("msgs_per_point", format!("{msgs}"));
        let lat = latencies
            .iter()
            .map(|(len, h)| format!("{{\"len\":{len},\"latency_ns\":{}}}", latency_json(h)))
            .collect::<Vec<_>>()
            .join(",");
        j.add_extra("loopback_latency", format!("[{lat}]"));
    }
    if let Some(j) = json {
        let path = j.write().expect("write --json");
        eprintln!("wrote {}", path.display());
    }
}
