//! Figure 7 — Gauss-Jordan speedup vs number of processes, for 32×32,
//! 48×48, 64×64 and 96×96 matrices.
//!
//! Paper: "Speedup is greater with larger matrices; this is the classic
//! computation versus communication balance … In the extreme, excessive
//! parallelization yields insufficient computation per iteration, and
//! speedup declines.  The most important conclusion … is that real
//! speedups can be obtained in the MPF environment."
//!
//! Sim mode prices the algorithm's communication on the Balance 21000
//! model; native mode times the real solver on the host (speedup > 1
//! requires the host to actually have multiple cores).
//!
//! Usage: `fig7_gauss [--sim | --native | --both]` (default `--sim`).

use mpf_bench::report::{print_series, Mode};
use mpf_bench::{native, Series};
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    if mode.sim {
        let costs = CostModel::calibrated(&MachineConfig::balance21000());
        let series = figures::fig7_gauss(&costs);
        print_series(
            "Figure 7 (Gauss-Jordan): speedup vs processes [modeled Balance 21000]",
            &series,
        );
    }
    if mode.native {
        let procs = [1usize, 2, 4, 8];
        let series: Vec<Series> = [32usize, 48, 64, 96]
            .iter()
            .map(|&n| Series {
                label: format!("{n}x{n} matrix"),
                points: procs
                    .iter()
                    .map(|&p| (p as f64, native::gauss_speedup(n, p, 0xF17)))
                    .collect(),
            })
            .collect();
        print_series(
            "Figure 7 (Gauss-Jordan): speedup vs processes [native host]",
            &series,
        );
    }
}
