//! Figure 6 — `random` benchmark: throughput vs number of processes, for
//! 1-, 8-, 64-, 256- and 1024-byte messages.
//!
//! Paper: "message throughput increases as additional processes are added
//! … For 1024-byte messages, paging overhead increases rapidly for more
//! than 10 processes; this is the reason for the decrease in observed
//! throughput.  Paging overheads are also significant for 256-byte
//! messages but do not occur until there are 20 active processes."
//!
//! Usage: `fig6_random [--sim | --native | --both]` (default `--sim`).

use mpf_bench::report::{print_series, Mode};
use mpf_bench::{native, Series};
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    if mode.sim {
        let machine = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&machine);
        let series = figures::fig6_random(&machine, &costs, 0xF16);
        print_series(
            "Figure 6 (random): throughput (bytes/s) vs processes [simulated Balance 21000]",
            &series,
        );
    }
    if mode.native {
        let procs = [2u32, 4, 8, 12, 16, 20];
        let series: Vec<Series> = [1usize, 8, 64, 256, 1024]
            .iter()
            .map(|&len| Series {
                label: format!("{len} byte messages"),
                points: procs
                    .iter()
                    .map(|&p| (p as f64, native::random_throughput(len, p, 200, 0xF16)))
                    .collect(),
            })
            .collect();
        print_series(
            "Figure 6 (random): throughput (bytes/s) vs processes [native host]",
            &series,
        );
    }
}
