//! Figure 3 — `base` benchmark: throughput vs message length.
//!
//! Paper: one process, loop-back LNVC, alternating send/receive of
//! fixed-length messages; "throughput increases with increasing message
//! length [and] approaches an asymptote … message copying costs dominate;
//! memory bandwidth is the performance limiting factor."
//!
//! Usage: `fig3_base [--sim | --native | --both] [--json <path>]`
//! (default `--sim`).

use mpf_bench::report::{print_series, JsonReport, Mode};
use mpf_bench::{native, Series};
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    let mut json = JsonReport::from_args();
    if mode.sim {
        let machine = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&machine);
        let series = figures::fig3_base(&machine, &costs);
        let title =
            "Figure 3 (base): throughput (bytes/s) vs message length [simulated Balance 21000]";
        print_series(title, std::slice::from_ref(&series));
        if let Some(j) = json.as_mut() {
            j.add(title, &[series]);
        }
    }
    if mode.native {
        let lengths = [16usize, 64, 128, 256, 512, 1024, 1536, 2048];
        let series = Series {
            label: "base loop-back".to_string(),
            points: lengths
                .iter()
                .map(|&len| (len as f64, native::base_throughput(len, 2_000)))
                .collect(),
        };
        let title = "Figure 3 (base): throughput (bytes/s) vs message length [native host]";
        print_series(title, std::slice::from_ref(&series));
        if let Some(j) = json.as_mut() {
            j.add(title, &[series]);
        }
    }
    if let Some(j) = json {
        let path = j.write().expect("write --json");
        eprintln!("wrote {}", path.display());
    }
}
