//! Figure 8 — SOR Poisson solver: per-iteration speedup vs processor-grid
//! dimension N (N×N processes), for 9×9, 17×17, 33×33 and 65×65 problems.
//!
//! Paper: "the computation cost for an iteration is proportional to the
//! area of the sub-grids, and the communication cost is proportional to
//! their perimeter … Because no equivalent sequential solver was
//! available, all speedups are shown relative to the smallest parallel
//! solver: 4 processes."
//!
//! Usage: `fig8_sor [--sim | --native | --both]` (default `--sim`).

use mpf_bench::report::{print_series, Mode};
use mpf_bench::{native, Series};
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    if mode.sim {
        let costs = CostModel::calibrated(&MachineConfig::balance21000());
        let series = figures::fig8_sor(&costs);
        print_series(
            "Figure 8 (SOR): per-iteration speedup vs dimension N, relative to 2x2 [modeled Balance 21000]",
            &series,
        );
    }
    if mode.native {
        let dims = [1usize, 2, 3, 4];
        let series: Vec<Series> = [65usize, 33, 17, 9]
            .iter()
            .map(|&grid| {
                let baseline = native::sor_iteration_secs(grid, 2, 30);
                Series {
                    label: format!("{grid} x {grid} problem"),
                    points: dims
                        .iter()
                        .map(|&n| {
                            let t = native::sor_iteration_secs(grid, n, 30);
                            (n as f64, baseline / t)
                        })
                        .collect(),
                }
            })
            .collect();
        print_series(
            "Figure 8 (SOR): per-iteration speedup vs dimension N, relative to 2x2 [native host]",
            &series,
        );
    }
}
