//! Figure 5 — `broadcast` benchmark: effective throughput vs number of
//! BROADCAST receivers, for 16-, 128- and 1024-byte messages.
//!
//! Paper: "by allowing the receiver processes to copy messages
//! concurrently, higher throughputs can be achieved … MPF achieved an
//! effective throughput of 687,245 bytes per second for 1024-byte messages
//! and 16 receiving processes."
//!
//! Usage: `fig5_broadcast [--sim | --native | --both]` (default `--sim`).

use mpf_bench::report::{print_series, Mode};
use mpf_bench::{native, Series};
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    if mode.sim {
        let machine = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&machine);
        let series = figures::fig5_broadcast(&machine, &costs);
        print_series(
            "Figure 5 (broadcast): effective throughput (bytes/s) vs receiving processes [simulated Balance 21000]",
            &series,
        );
    }
    if mode.native {
        let receivers = [1u32, 2, 4, 8, 12, 16];
        let series: Vec<Series> = [16usize, 128, 1024]
            .iter()
            .map(|&len| Series {
                label: format!("{len} byte messages"),
                points: receivers
                    .iter()
                    .map(|&n| (n as f64, native::broadcast_throughput(len, n, 300)))
                    .collect(),
            })
            .collect();
        print_series(
            "Figure 5 (broadcast): effective throughput (bytes/s) vs receiving processes [native host]",
            &series,
        );
    }
}
