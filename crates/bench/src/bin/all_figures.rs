//! Regenerates every figure of the paper's evaluation in one run
//! (simulated Balance 21000 mode; pass `--native` or `--both` to add the
//! host-native measurements, which are slower).
//!
//! This is the binary EXPERIMENTS.md's numbers come from.

use mpf_bench::native;
use mpf_bench::report::{print_series, Mode};
use mpf_bench::Series;
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    let machine = MachineConfig::balance21000();
    let costs = CostModel::calibrated(&machine);

    if mode.sim {
        println!(
            "== Simulated Sequent Balance 21000 ({} CPUs @ {} MHz, {} MB/s bus, {} MB) ==\n",
            machine.cpus,
            machine.cpu_hz / 1_000_000,
            machine.bus_bytes_per_sec / 1_000_000,
            machine.mem_bytes >> 20,
        );
        print_series(
            "Figure 3 (base): throughput (bytes/s) vs message length",
            &[figures::fig3_base(&machine, &costs)],
        );
        print_series(
            "Figure 4 (fcfs): throughput (bytes/s) vs receiving processes",
            &figures::fig4_fcfs(&machine, &costs),
        );
        print_series(
            "Figure 5 (broadcast): effective throughput (bytes/s) vs receiving processes",
            &figures::fig5_broadcast(&machine, &costs),
        );
        print_series(
            "Figure 6 (random): throughput (bytes/s) vs processes",
            &figures::fig6_random(&machine, &costs, 0xF16),
        );
        print_series(
            "Figure 7 (Gauss-Jordan): speedup vs processes",
            &figures::fig7_gauss(&costs),
        );
        print_series(
            "Figure 8 (SOR): per-iteration speedup vs dimension N (relative to 2x2)",
            &figures::fig8_sor(&costs),
        );
    }

    if mode.native {
        println!("== Native host ==\n");
        let lengths = [16usize, 128, 1024, 2048];
        print_series(
            "Figure 3 (base) [native]",
            &[Series {
                label: "base loop-back".into(),
                points: lengths
                    .iter()
                    .map(|&len| (len as f64, native::base_throughput(len, 1_000)))
                    .collect(),
            }],
        );
        let receivers = [1u32, 4, 8, 16];
        print_series(
            "Figure 4 (fcfs) [native]",
            &[16usize, 1024]
                .iter()
                .map(|&len| Series {
                    label: format!("{len} byte messages"),
                    points: receivers
                        .iter()
                        .map(|&n| (n as f64, native::fcfs_throughput(len, n, 300)))
                        .collect(),
                })
                .collect::<Vec<_>>(),
        );
        print_series(
            "Figure 5 (broadcast) [native]",
            &[16usize, 1024]
                .iter()
                .map(|&len| Series {
                    label: format!("{len} byte messages"),
                    points: receivers
                        .iter()
                        .map(|&n| (n as f64, native::broadcast_throughput(len, n, 200)))
                        .collect(),
                })
                .collect::<Vec<_>>(),
        );
        let procs = [2u32, 8, 16];
        print_series(
            "Figure 6 (random) [native]",
            &[8usize, 1024]
                .iter()
                .map(|&len| Series {
                    label: format!("{len} byte messages"),
                    points: procs
                        .iter()
                        .map(|&p| (p as f64, native::random_throughput(len, p, 100, 0xF16)))
                        .collect(),
                })
                .collect::<Vec<_>>(),
        );
        print_series(
            "Figure 7 (Gauss-Jordan) [native]",
            &[32usize, 96]
                .iter()
                .map(|&n| Series {
                    label: format!("{n}x{n} matrix"),
                    points: [1usize, 2, 4]
                        .iter()
                        .map(|&p| (p as f64, native::gauss_speedup(n, p, 0xF17)))
                        .collect(),
                })
                .collect::<Vec<_>>(),
        );
        print_series(
            "Figure 8 (SOR) [native]",
            &[17usize, 65]
                .iter()
                .map(|&grid| {
                    let baseline = native::sor_iteration_secs(grid, 2, 20);
                    Series {
                        label: format!("{grid} x {grid} problem"),
                        points: [1usize, 2, 3]
                            .iter()
                            .map(|&n| {
                                (n as f64, baseline / native::sor_iteration_secs(grid, n, 20))
                            })
                            .collect(),
                    }
                })
                .collect::<Vec<_>>(),
        );
    }
}
