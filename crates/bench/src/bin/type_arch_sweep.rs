//! Type-architecture sweep — the paper's motivating question (§1).
//!
//! "Snyder has argued eloquently that we must develop a suitable set of
//! type architectures … [to] permit an algorithm designer to accurately
//! estimate the performance penalties when moving from one type
//! architecture to another.  Unfortunately, no such abstractions and
//! performance models yet exist."
//!
//! The calibrated machine model *is* such a performance model for one
//! point in the design space; this binary sweeps the machine parameters
//! around the Balance 21000 to show how the message-passing penalty moves:
//!
//! * bus bandwidth ×{0.5, 1, 2, 8} — when does broadcast stop scaling?
//! * CPU speed ×{1, 4, 16} at fixed bus — when does the bus, not the
//!   copy loop, become "the performance limiting factor"?
//! * Gauss-Jordan speedup for a faster interconnect — how much of
//!   Figure 7's communication tax is machine, not model?
//!
//! Usage: `type_arch_sweep`

use mpf_bench::report::print_series;
use mpf_bench::Series;
use mpf_sim::{apps_model, workloads, CostModel, MachineConfig};

fn main() {
    // Sweep 1: bus bandwidth vs broadcast effective throughput.
    let receivers = [1u32, 4, 8, 16];
    let bus_series: Vec<Series> = [0.5f64, 1.0, 2.0, 8.0]
        .iter()
        .map(|&factor| {
            let mut machine = MachineConfig::balance21000();
            machine.bus_bytes_per_sec = (machine.bus_bytes_per_sec as f64 * factor) as u64;
            let costs = CostModel::calibrated(&machine);
            Series {
                label: format!("{factor}x bus"),
                points: receivers
                    .iter()
                    .map(|&n| {
                        let r = workloads::run_broadcast(&machine, &costs, 1024, n, 120);
                        (n as f64, r.delivered_throughput())
                    })
                    .collect(),
            }
        })
        .collect();
    print_series(
        "Type-architecture sweep A: broadcast effective throughput (1 KB) vs receivers, by bus bandwidth",
        &bus_series,
    );

    // Sweep 2: CPU speed vs base asymptote (fixed 80 MB/s bus).
    let lengths = [256usize, 1024, 2048];
    let cpu_series: Vec<Series> = [1u64, 4, 16]
        .iter()
        .map(|&factor| {
            let mut machine = MachineConfig::balance21000();
            machine.cpu_hz *= factor;
            let costs = CostModel::calibrated(&machine);
            Series {
                label: format!("{factor}x CPU"),
                points: lengths
                    .iter()
                    .map(|&len| {
                        let r = workloads::run_base(&machine, &costs, len, 80);
                        (len as f64, r.send_throughput())
                    })
                    .collect(),
            }
        })
        .collect();
    print_series(
        "Type-architecture sweep B: base loop-back throughput vs message length, by CPU speed",
        &cpu_series,
    );

    // Sweep 3: Gauss-Jordan speedup under cheaper communication — halve
    // the per-block and per-byte costs (a 'better library / faster
    // memory' hypothetical) and compare the 48x48 curve.
    let procs = [2usize, 4, 8, 16];
    let machine = MachineConfig::balance21000();
    let baseline = CostModel::calibrated(&machine);
    let mut cheap = baseline.clone();
    cheap.per_block_alloc /= 4;
    cheap.copy_cycles_per_byte /= 4;
    let gj_series: Vec<Series> = [("Balance 21000", &baseline), ("4x cheaper comm", &cheap)]
        .iter()
        .map(|(label, costs)| Series {
            label: (*label).to_string(),
            points: procs
                .iter()
                .map(|&p| (p as f64, apps_model::gj_speedup(costs, 48, p)))
                .collect(),
        })
        .collect();
    print_series(
        "Type-architecture sweep C: 48x48 Gauss-Jordan speedup vs processes, by communication cost",
        &gj_series,
    );
}
