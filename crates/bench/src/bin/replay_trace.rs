//! Cross-architecture cost estimation from a measured schedule: records a
//! native MPF run with the event tracer, then replays it on the Balance
//! 21000 model — the paper's §1 "performance penalties when moving from
//! one type architecture to another", answered with data.
//!
//! Usage: `replay_trace [senders] [msgs] [len]`

use mpf_bench::replay::{trace_to_schedule, traced_fanin};
use mpf_sim::{replay, CostModel, MachineConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let senders: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let msgs: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let len: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(256);

    println!("recording: {senders} senders x {msgs} messages x {len} B -> 1 FCFS receiver\n");
    let log = traced_fanin(senders, msgs, len);
    let native = log.summary();
    println!("native host:");
    println!("  span            {:>12.3} ms", native.span_ns as f64 / 1e6);
    println!("  send throughput {:>12.0} B/s", native.send_throughput);
    println!(
        "  mean latency    {:>12.3} us (max {:.3} us, {} matched)",
        native.mean_latency_ns / 1e3,
        native.max_latency_ns as f64 / 1e3,
        native.matched
    );
    println!("  receiver blocked {} times", native.recv_blocks);

    let machine = MachineConfig::balance21000();
    let costs = CostModel::calibrated(&machine);
    let schedule = trace_to_schedule(&log, &[], 0.0);
    let sim = replay::replay(&machine, &costs, &schedule);
    println!("\nreplayed on the Balance 21000 model (communication only):");
    println!("  span            {:>12.3} ms", sim.elapsed_secs * 1e3);
    println!("  send throughput {:>12.0} B/s", sim.send_throughput());
    println!("  bus utilization {:>12.1} %", sim.bus_utilization * 100.0);
    println!("  lock waits      {:>12}", sim.lock_waits);

    let penalty = (native.send_throughput) / sim.send_throughput().max(1e-9);
    println!(
        "\ntype-architecture estimate: this schedule runs ~{penalty:.0}x faster on the host than on a 1987 Balance 21000"
    );
}
