//! Figure 3, batched: loop-back throughput vs message length at batch
//! sizes 1, 8, and 64, on both backends.
//!
//! The point of the submission/completion rings is amortisation — one
//! doorbell, one conversation lock, one notify, and (with latency
//! sampling) roughly one clock read per *batch* instead of per message.
//! That shows up as a throughput multiple at small message sizes, where
//! per-message overhead dominates the copy; at large sizes the copy wins
//! and the curves converge.  `batch = 1` pays the ring machinery with no
//! amortisation, so it bounds the unbatched path from below.
//!
//! Usage: `fig3_aio [--msgs N] [--json <path>]` (default 4096 messages
//! per point).  The JSON extras record the 16-byte batch=64 vs batch=1
//! speedup per backend — the acceptance number for the aio PR.

use mpf_bench::report::{json_num, print_series, JsonReport};
use mpf_bench::{aio, Series};

const LENGTHS: [usize; 5] = [16, 64, 256, 1024, 2048];
const BATCHES: [usize; 3] = [1, 8, 64];

fn speedup_at_16(series: &[Series]) -> f64 {
    let at16 = |label_frag: &str| {
        series
            .iter()
            .find(|s| s.label.contains(label_frag))
            .and_then(|s| s.points.iter().find(|(x, _)| *x == 16.0))
            .map(|&(_, y)| y)
            .expect("16-byte point present")
    };
    at16("batch=64") / at16("batch=1")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let msgs: u64 = args
        .iter()
        .position(|a| a == "--msgs")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--msgs N"))
        .unwrap_or(4096);
    let mut json = JsonReport::from_args();

    let measure = |backend: &str, f: &dyn Fn(usize, u64, usize) -> f64| -> Vec<Series> {
        BATCHES
            .iter()
            .map(|&batch| Series {
                label: format!("{backend} batch={batch}"),
                points: LENGTHS
                    .iter()
                    .map(|&len| (len as f64, f(len, msgs, batch)))
                    .collect(),
            })
            .collect()
    };

    let threads = measure("threads", &aio::thread_batched_throughput);
    let thread_speedup = speedup_at_16(&threads);
    let have_ipc = mpf_shm::sys::HAVE_SYSCALLS;
    let ipc = if have_ipc {
        measure("ipc loop-back", &aio::ipc_batched_throughput)
    } else {
        Vec::new()
    };

    let title = "Figure 3, batched rings: loop-back throughput (bytes/s) vs message length";
    let mut series = threads;
    series.extend(ipc);
    print_series(title, &series);
    println!("# 16-byte speedup, batch=64 vs batch=1");
    println!("threads        {thread_speedup:.2}x");
    if have_ipc {
        let ipc_speedup = speedup_at_16(&series[BATCHES.len()..]);
        println!("ipc loop-back  {ipc_speedup:.2}x");
    }

    if let Some(j) = json.as_mut() {
        j.add(title, &series);
        j.add_extra("msgs_per_point", format!("{msgs}"));
        j.add_extra("speedup_16B_batch64_vs_1_threads", json_num(thread_speedup));
        if have_ipc {
            j.add_extra(
                "speedup_16B_batch64_vs_1_ipc",
                json_num(speedup_at_16(&series[BATCHES.len()..])),
            );
        }
    }
    if let Some(j) = json {
        let path = j.write().expect("write --json");
        eprintln!("wrote {}", path.display());
    }
}
