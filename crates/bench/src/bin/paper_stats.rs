//! Reprints the paper's headline prose numbers next to this
//! reproduction's equivalents — the quotable one-liners of §4/§5.
//!
//! * "The MPF run-time support is only a few hundred lines of C code" /
//!   "takes only 800 lines of heavy-commented C code" → our core line
//!   counts (printed per module at build time of this table).
//! * "MPF achieved an effective throughput of 687,245 bytes per second
//!   for 1024-byte messages and 16 receiving processes" → simulated
//!   equivalent.
//! * Figure 3's asymptote → simulated 2 KB loop-back throughput.
//!
//! Usage: `paper_stats`

use mpf_sim::{validate, workloads, CostModel, MachineConfig};

fn main() {
    let machine = MachineConfig::balance21000();
    let costs = CostModel::calibrated(&machine);

    println!("paper claim vs reproduction (simulated Balance 21000)\n");
    println!("{}", validate::render(&validate::anchors(&machine, &costs)));

    let base = workloads::run_base(&machine, &costs, 2048, 120);
    println!(
        "Figure 3 asymptote      paper ~25,000 B/s      sim {:>10.0} B/s",
        base.send_throughput()
    );

    let bcast = workloads::run_broadcast(&machine, &costs, 1024, 16, 200);
    println!(
        "broadcast peak          paper  687,245 B/s      sim {:>10.0} B/s   (1024 B x 16 receivers)",
        bcast.delivered_throughput()
    );

    let fcfs = workloads::run_fcfs(&machine, &costs, 1024, 16, 200);
    println!(
        "fcfs 1 KB plateau       paper  ~40-50 KB/s      sim {:>10.0} B/s   (1024 B x 16 receivers)",
        fcfs.send_throughput()
    );

    println!(
        "\nbus utilization during the 16-receiver broadcast: {:.1}%  (the 'memory bandwidth' ceiling)",
        bcast.bus_utilization * 100.0
    );
    println!(
        "lock acquisitions that queued during the 16-receiver fcfs run: {}",
        fcfs.lock_waits
    );

    let cfg = mpf::MpfConfig::paper_faithful(16, 20);
    let layout = mpf::layout::RegionLayout::for_config(&cfg);
    println!(
        "\npaper: 'adds 7000 bytes to a user's program'; our paper-faithful region: {} KiB",
        layout.total_bytes() / 1024
    );
    println!("{}", layout.render());
}
