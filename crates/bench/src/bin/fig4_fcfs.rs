//! Figure 4 — `fcfs` benchmark: throughput vs number of FCFS receivers,
//! for 16-, 128- and 1024-byte messages.
//!
//! Paper: "the total message throughput is limited by the message
//! transmission rate.  The decreasing throughputs for 16-byte and 128-byte
//! messages are caused by increased LNVC contention with additional
//! receiver processes.  For larger messages, this contention is masked by
//! message copying costs."
//!
//! Usage: `fig4_fcfs [--sim | --native | --both]` (default `--sim`).

use mpf_bench::report::{print_series, Mode};
use mpf_bench::{native, Series};
use mpf_sim::{figures, CostModel, MachineConfig};

fn main() {
    let mode = Mode::from_args();
    if mode.sim {
        let machine = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&machine);
        let series = figures::fig4_fcfs(&machine, &costs);
        print_series(
            "Figure 4 (fcfs): throughput (bytes/s) vs receiving processes [simulated Balance 21000]",
            &series,
        );
    }
    if mode.native {
        let receivers = [1u32, 2, 4, 8, 12, 16];
        let series: Vec<Series> = [16usize, 128, 1024]
            .iter()
            .map(|&len| Series {
                label: format!("{len} byte messages"),
                points: receivers
                    .iter()
                    .map(|&n| (n as f64, native::fcfs_throughput(len, n, 500)))
                    .collect(),
            })
            .collect();
        print_series(
            "Figure 4 (fcfs): throughput (bytes/s) vs receiving processes [native host]",
            &series,
        );
    }
}
