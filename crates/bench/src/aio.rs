//! Batched (submission/completion ring) loop-back throughput, for the
//! `fig3_aio` binary.
//!
//! The measurement mirrors the paper's Figure 3 `base` loop — one sender,
//! one FCFS receiver, alternating — but moves `batch` messages per
//! iteration through `send_batch`/`recv_batch`, so the per-message
//! doorbell, conversation lock, notify, and clock costs are amortised
//! across the batch.  `batch = 1` degenerates to the unbatched cost plus
//! ring overhead, which is exactly the baseline the amortisation claim is
//! measured against.

use std::sync::Arc;
use std::time::Instant;

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_ipc::IpcMpf;

/// Ring capacity is 64 entries; batches are clamped there by submit, so
/// the bench never asks for more in one call.
pub const MAX_BATCH: usize = 64;

fn config(len: usize) -> MpfConfig {
    MpfConfig::new(4, 4)
        .with_block_payload(len.clamp(16, 256))
        .with_total_blocks(4096)
        .with_max_messages(256)
        .with_max_connections(8)
        // Satellite of the same PR: stamp 1-in-32 messages instead of
        // every one, so the latency histogram stays populated without a
        // clock read per message.
        .latency_sample_rate(32)
}

/// Thread-backend loop-back: `msgs` messages of `len` bytes moved in
/// `batch`-sized bursts.  Returns bytes/s.
pub fn thread_batched_throughput(len: usize, msgs: u64, batch: usize) -> f64 {
    assert!((1..=MAX_BATCH).contains(&batch));
    let m = Arc::new(Mpf::init(config(len)).expect("init"));
    let p0 = ProcessId::from_index(0);
    let p1 = ProcessId::from_index(1);
    let tx = m.open_send(p0, "bench").expect("tx");
    let rx = m.open_receive(p1, "bench", Protocol::Fcfs).expect("rx");
    let payload = vec![0xA5u8; len];
    let refs: Vec<&[u8]> = (0..batch).map(|_| payload.as_slice()).collect();
    let rounds = msgs / batch as u64;
    // Untimed warm-up: fault in the block pool and queue pages so the
    // first measured point (batch=1, 16B) isn't dominated by first-touch.
    for _ in 0..(rounds / 16).clamp(1, 64) {
        let completions = m.send_batch(p0, tx, &refs).expect("send_batch");
        assert_eq!(completions.len(), batch);
        let mut got = 0;
        while got < batch {
            got += m.recv_batch(p1, rx, batch - got).expect("recv_batch").len();
        }
    }
    let start = Instant::now();
    for _ in 0..rounds {
        let completions = m.send_batch(p0, tx, &refs).expect("send_batch");
        assert_eq!(completions.len(), batch);
        let mut got = 0;
        while got < batch {
            got += m.recv_batch(p1, rx, batch - got).expect("recv_batch").len();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (rounds * batch as u64) as f64 * len as f64 / secs
}

/// Shared-region loop-back, same shape as the thread variant.
pub fn ipc_batched_throughput(len: usize, msgs: u64, batch: usize) -> f64 {
    assert!((1..=MAX_BATCH).contains(&batch));
    let m = IpcMpf::create(
        &format!("fig3-aio-{}-{len}-{batch}", std::process::id()),
        &config(len),
    )
    .expect("create region");
    let tx = m.open_send("bench").expect("tx");
    let rx = m.open_receive("bench", Protocol::Fcfs).expect("rx");
    let payload = vec![0xA5u8; len];
    let refs: Vec<&[u8]> = (0..batch).map(|_| payload.as_slice()).collect();
    let rounds = msgs / batch as u64;
    // Untimed warm-up, as in the thread variant.
    for _ in 0..(rounds / 16).clamp(1, 64) {
        let completions = m.send_batch(tx, &refs).expect("send_batch");
        assert_eq!(completions.len(), batch);
        let mut got = 0;
        while got < batch {
            got += m.recv_batch(rx, batch - got).expect("recv_batch").len();
        }
    }
    let start = Instant::now();
    for _ in 0..rounds {
        let completions = m.send_batch(tx, &refs).expect("send_batch");
        assert_eq!(completions.len(), batch);
        let mut got = 0;
        while got < batch {
            got += m.recv_batch(rx, batch - got).expect("recv_batch").len();
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (rounds * batch as u64) as f64 * len as f64 / secs
}
