//! Bridges `mpf::trace::TraceLog` (what a native run did) to
//! `mpf_sim::replay::ReplaySchedule` (what it would cost on the Balance
//! 21000).

use mpf::trace::{EventKind, TraceLog};
use mpf::Protocol;
use mpf_sim::replay::{ReplayOp, ReplaySchedule};

/// Converts a trace into a replay schedule.
///
/// Receive protocol per `(pid, lnvc)` is taken from the `OpenRecv` events
/// when `protocols` does not override it; since the trace does not carry
/// the protocol, callers that mixed protocols should pass an explicit
/// mapping via `broadcast_lnvcs` (conversation indices whose receivers
/// were BROADCAST).  `cycles_per_ns` scales host gaps to Balance cycles —
/// `0.0` drops think-time entirely (pure communication replay).
pub fn trace_to_schedule(
    log: &TraceLog,
    broadcast_lnvcs: &[u32],
    cycles_per_ns: f64,
) -> ReplaySchedule {
    let timed: Vec<(u32, u64, ReplayOp)> = log
        .events
        .iter()
        .filter_map(|e| {
            let op = match e.kind {
                EventKind::Send => Some(ReplayOp::Send {
                    lnvc: e.lnvc as usize,
                    len: e.len as usize,
                }),
                EventKind::Recv => Some(if broadcast_lnvcs.contains(&e.lnvc) {
                    ReplayOp::RecvBroadcast {
                        lnvc: e.lnvc as usize,
                    }
                } else {
                    ReplayOp::RecvFcfs {
                        lnvc: e.lnvc as usize,
                    }
                }),
                _ => None,
            };
            op.map(|op| (e.pid, e.at_ns, op))
        })
        .collect();
    ReplaySchedule::from_timed_ops(&timed, cycles_per_ns)
}

/// Runs a small traced native workload (`senders` → one FCFS receiver,
/// `msgs` × `len` bytes) and returns its trace.  Used by the
/// `replay_trace` binary and tests.
pub fn traced_fanin(senders: usize, msgs: u64, len: usize) -> TraceLog {
    use mpf::{Mpf, MpfConfig, ProcessId};
    let mpf = Mpf::init(
        MpfConfig::new(8, senders as u32 + 1)
            .with_total_blocks(8192)
            .with_tracing(1 << 20),
    )
    .expect("init");
    // Open the receive connection before any sender thread exists: if the
    // senders ran to completion (send + close) first, the conversation
    // would be deleted and the stream discarded (paper §3.2).
    let rx = mpf
        .receiver(
            ProcessId::from_index(senders),
            "traced:fanin",
            Protocol::Fcfs,
        )
        .expect("rx");
    std::thread::scope(|s| {
        for i in 0..senders {
            let mpf = &mpf;
            s.spawn(move || {
                let tx = mpf
                    .sender(ProcessId::from_index(i), "traced:fanin")
                    .expect("tx");
                let payload = vec![i as u8; len];
                for _ in 0..msgs {
                    tx.send(&payload).expect("send");
                }
            });
        }
        let rx = &rx;
        s.spawn(move || {
            let mut buf = vec![0u8; len.max(1)];
            for _ in 0..senders as u64 * msgs {
                rx.recv(&mut buf).expect("recv");
            }
        });
    });
    drop(rx);
    mpf.take_trace().expect("tracing enabled")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpf_sim::{replay, CostModel, MachineConfig};

    #[test]
    fn native_trace_replays_on_the_model() {
        let log = traced_fanin(2, 15, 64);
        let summary = log.summary();
        assert_eq!(summary.sends, 30);
        assert_eq!(summary.receives, 30);

        let schedule = trace_to_schedule(&log, &[], 0.0);
        assert_eq!(schedule.total_sends(), 30);
        let machine = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&machine);
        let report = replay::replay(&machine, &costs, &schedule);
        assert_eq!(report.msgs_sent, 30);
        assert_eq!(report.msgs_received, 30);
        assert!(report.elapsed_secs > 0.0);
    }

    #[test]
    fn think_time_scaling_lengthens_the_replay() {
        let log = traced_fanin(1, 10, 32);
        let machine = MachineConfig::balance21000();
        let costs = CostModel::calibrated(&machine);
        let no_think = replay::replay(&machine, &costs, &trace_to_schedule(&log, &[], 0.0));
        let with_think = replay::replay(&machine, &costs, &trace_to_schedule(&log, &[], 0.05));
        assert!(with_think.elapsed_cycles >= no_think.elapsed_cycles);
    }
}
