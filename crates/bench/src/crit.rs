//! A tiny in-repo stand-in for the `criterion` API subset the ablation
//! benches use, so the workspace builds with no external crates.
//!
//! Semantics: each benchmark is warmed up briefly, then timed over enough
//! iterations to fill a short measurement window; the per-iteration time
//! (and derived byte throughput, when declared) is printed as one aligned
//! line.  No statistics beyond the mean — these benches inform relative
//! ordering, not publication-grade confidence intervals.

use std::time::{Duration, Instant};

/// Target wall-clock spent measuring one benchmark.
const MEASURE_WINDOW: Duration = Duration::from_millis(200);
/// Iterations used to estimate the per-iteration cost before measuring.
const PILOT_ITERS: u64 = 8;

/// Benchmark identifier: `from_parameter(16)` → `"16"`,
/// `new("paper_10B_vs", 40)` → `"paper_10B_vs/40"`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id from a bare parameter.
    pub fn from_parameter<P: std::fmt::Display>(p: P) -> Self {
        Self {
            label: p.to_string(),
        }
    }

    /// Id from a function name plus parameter.
    pub fn new<P: std::fmt::Display>(name: &str, p: P) -> Self {
        Self {
            label: format!("{name}/{p}"),
        }
    }
}

/// Throughput declaration attached to a group.
#[derive(Clone, Copy)]
pub enum Throughput {
    /// Bytes moved per iteration.
    Bytes(u64),
}

/// Per-iteration timer handed to the closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f` over a calibrated number of iterations.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        // Pilot: estimate cost so the real run fits the window.
        let t0 = Instant::now();
        for _ in 0..PILOT_ITERS {
            std::hint::black_box(f());
        }
        let pilot = t0.elapsed().max(Duration::from_nanos(1));
        let per = pilot.as_nanos().max(1) / PILOT_ITERS as u128;
        let iters = (MEASURE_WINDOW.as_nanos() / per).clamp(1, 10_000_000) as u64;
        let t1 = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        self.elapsed = t1.elapsed();
        self.iters = iters;
    }

    /// Lets the closure time `iters` iterations itself (for paths that
    /// need threads spun up around the measured loop).
    pub fn iter_custom(&mut self, mut f: impl FnMut(u64) -> Duration) {
        let pilot = f(PILOT_ITERS).max(Duration::from_nanos(1));
        let per = pilot.as_nanos().max(1) / PILOT_ITERS as u128;
        let iters = (MEASURE_WINDOW.as_nanos() / per).clamp(1, 10_000_000) as u64;
        self.elapsed = f(iters);
        self.iters = iters;
    }
}

/// A named group of related measurements.
pub struct BenchmarkGroup {
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup {
    /// Criterion compatibility: sample count is ignored (we time one
    /// calibrated window per bench).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Declares per-iteration throughput for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one measurement under this group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.label), &b, self.throughput);
        self
    }

    /// Flushes the group (printing happens eagerly; this is a no-op).
    pub fn finish(&mut self) {}
}

/// The top-level driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs one stand-alone measurement.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        report(name, &b, None);
        self
    }
}

fn report(name: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        println!("{name:<48} (not measured)");
        return;
    }
    let per_ns = b.elapsed.as_nanos() as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Bytes(bytes)) if per_ns > 0.0 => {
            let mbps = bytes as f64 * 1e9 / per_ns / (1024.0 * 1024.0);
            println!("{name:<48} {per_ns:>12.1} ns/iter  {mbps:>10.2} MiB/s");
        }
        _ => println!("{name:<48} {per_ns:>12.1} ns/iter"),
    }
}

/// Criterion-compatible group definition: expands to a runner function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::crit::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Criterion-compatible entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1u64 + 1));
        let mut g = c.benchmark_group("grp");
        g.throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter(64), &64usize, |b, &n| {
            b.iter(|| vec![0u8; n])
        });
        g.finish();
    }

    #[test]
    fn iter_custom_scales_iters() {
        let mut got = 0u64;
        let mut b = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        b.iter_custom(|iters| {
            got = iters;
            Duration::from_millis(50)
        });
        assert_eq!(b.iters, got);
        assert!(b.iters >= 1);
    }
}
