//! Byte-level message encoding for the applications.
//!
//! MPF transfers untyped byte buffers (`char *` in the paper's C
//! interface), so the applications marshal their floats and indices by
//! hand, little-endian, exactly as the 1987 programs would have memcpy'd
//! structs.

/// Encodes a slice of `f64` values.
pub fn f64s_to_bytes(values: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Decodes a byte buffer into `f64` values.
///
/// # Panics
/// If the length is not a multiple of 8.
pub fn bytes_to_f64s(bytes: &[u8]) -> Vec<f64> {
    assert_eq!(bytes.len() % 8, 0, "not a whole number of f64s");
    bytes
        .chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")))
        .collect()
}

/// Encodes `(u32, f64)` — e.g. a pivot candidate `(row, magnitude)`.
pub fn u32_f64_to_bytes(i: u32, v: f64) -> [u8; 12] {
    let mut out = [0u8; 12];
    out[..4].copy_from_slice(&i.to_le_bytes());
    out[4..].copy_from_slice(&v.to_le_bytes());
    out
}

/// Decodes `(u32, f64)`.
///
/// # Panics
/// If the buffer is not exactly 12 bytes.
pub fn bytes_to_u32_f64(bytes: &[u8]) -> (u32, f64) {
    assert_eq!(bytes.len(), 12);
    (
        u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")),
        f64::from_le_bytes(bytes[4..].try_into().expect("8 bytes")),
    )
}

/// Encodes a bare `u32`.
pub fn u32_to_bytes(i: u32) -> [u8; 4] {
    i.to_le_bytes()
}

/// Decodes a bare `u32`.
///
/// # Panics
/// If the buffer is not exactly 4 bytes.
pub fn bytes_to_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes.try_into().expect("4 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_roundtrip() {
        let v = vec![0.0, -1.5, std::f64::consts::PI, f64::MAX];
        assert_eq!(bytes_to_f64s(&f64s_to_bytes(&v)), v);
    }

    #[test]
    fn pair_roundtrip() {
        let (i, v) = bytes_to_u32_f64(&u32_f64_to_bytes(42, -2.5));
        assert_eq!(i, 42);
        assert_eq!(v, -2.5);
    }

    #[test]
    fn u32_roundtrip() {
        assert_eq!(bytes_to_u32(&u32_to_bytes(0xDEAD_BEEF)), 0xDEAD_BEEF);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn ragged_f64_buffer_panics() {
        let _ = bytes_to_f64s(&[0u8; 9]);
    }
}
