//! # mpf-apps — the paper's application studies
//!
//! Two parallel applications exercise MPF end-to-end, exactly as in §4:
//!
//! * [`gauss_jordan`] — the Gauss-Jordan linear solver with partial
//!   pivoting: rows are partitioned over worker processes; each worker
//!   sends its local pivot candidate to an **arbiter** over an FCFS LNVC;
//!   the arbiter picks the global pivot and notifies the owner; the owner
//!   **broadcasts** the pivot row; everyone sweeps.  "It contains both
//!   one-to-one and broadcast communications."
//! * [`sor`] — the successive over-relaxation Poisson solver ported from
//!   a hypercube: the grid is split into N×N subgrids; boundary rows and
//!   columns are exchanged with the four neighbours over FCFS LNVCs; a
//!   monitor process collects per-subgrid convergence flags and
//!   broadcasts the verdict.
//!
//! Each application ships three variants for the paper's cross-paradigm
//! comparison: sequential (baseline for speedup), MPF message passing,
//! and native shared memory (barrier-synchronized — the paradigm the
//! paper contrasts MPF against).

pub mod gauss_jordan;
pub mod grid;
pub mod linalg;
pub mod sor;
pub mod wire;
