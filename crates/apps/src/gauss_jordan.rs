//! Gauss-Jordan linear solver with partial pivoting (paper §4, Figure 7).
//!
//! "The parallel implementation of this algorithm partitions the matrix A
//! into equal sized groups of contiguous rows; each partition is assigned
//! to a process.  Each process searches for the maximum element in the
//! current column, and sends this value to an arbiter process.  The
//! arbiter process identifies the maximum of the maxima, and advises the
//! process holding this value.  The identified process broadcasts the
//! selected pivot row to all other processes.  The processes then sweep
//! the rows of their partition using this pivot row and begin a new
//! iteration."
//!
//! Because rows stay put (no inter-process row swaps), pivoting tracks a
//! *used* flag per row: column `k`'s pivot is the unused row with the
//! largest `|a[r][k]|`; after `n` rounds every row is the pivot of exactly
//! one column and `x[col(r)] = b[r] / a[r][col(r)]`.
//!
//! Three variants share that algorithm: [`solve_sequential`] (the speedup
//! baseline), [`solve_mpf`] (message passing over four LNVCs), and
//! [`solve_shared`] (the shared-memory paradigm the paper contrasts:
//! barriers plus a shared pivot slot).

// Index loops mirror the paper's row/column sweeps; iterator forms
// obscure the `a[r][c]` arithmetic clippy would trade them for.
#![allow(clippy::needless_range_loop)]

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_shm::barrier::SpinBarrier;
use mpf_shm::process::run_processes_collect;

use crate::linalg::Matrix;
use crate::wire;

/// Splits `n` rows into `parts` contiguous partitions; returns `(lo, hi)`
/// for partition `i` (empty when there are more workers than rows).
pub fn partition(n: usize, parts: usize, i: usize) -> (usize, usize) {
    let base = n / parts;
    let extra = n % parts;
    let lo = i * base + i.min(extra);
    let hi = lo + base + usize::from(i < extra);
    (lo, hi)
}

/// Sequential Gauss-Jordan with partial pivoting (no row exchanges; used
/// flags, as in the parallel version).  Returns `x` with `A·x = b`.
pub fn solve_sequential(a: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    let mut used = vec![false; n];
    let mut pivot_col = vec![usize::MAX; n];

    for k in 0..n {
        // Partial pivot: the unused row maximizing |a[r][k]|.
        let piv = (0..n)
            .filter(|&r| !used[r])
            .max_by(|&r1, &r2| {
                f64::abs(m.get(r1, k))
                    .partial_cmp(&f64::abs(m.get(r2, k)))
                    .expect("matrix entries are finite")
            })
            .expect("an unused row always remains");
        used[piv] = true;
        pivot_col[piv] = k;
        let piv_row: Vec<f64> = m.row(piv).to_vec();
        let piv_b = rhs[piv];
        for r in 0..n {
            if r == piv {
                continue;
            }
            let factor = m.get(r, k) / piv_row[k];
            if factor != 0.0 {
                for c in 0..n {
                    let v = m.get(r, c) - factor * piv_row[c];
                    m.set(r, c, v);
                }
                rhs[r] -= factor * piv_b;
            }
        }
    }

    let mut x = vec![0.0; n];
    for r in 0..n {
        let k = pivot_col[r];
        x[k] = rhs[r] / m.get(r, k);
    }
    x
}

/// Message-passing Gauss-Jordan over MPF with `workers` worker processes
/// plus one arbiter.  Each process owns only its row partition; all
/// coordination flows through four LNVCs:
///
/// | LNVC | protocol | traffic |
/// |---|---|---|
/// | `gj:cand`   | FCFS to arbiter | per-column local maxima |
/// | `gj:winner` | BROADCAST from arbiter | winning worker index |
/// | `gj:pivot`  | BROADCAST among workers | the pivot row (+ rhs) |
/// | `gj:x`      | FCFS to arbiter | solution fragments |
pub fn solve_mpf(a: &Matrix, b: &[f64], workers: usize) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    assert!(workers >= 1);
    let row_bytes = (n + 1) * 8;
    let cfg = MpfConfig::new(8, workers as u32 + 1)
        .with_block_payload(64)
        .with_total_blocks(((workers + 4) * (row_bytes / 64 + 2) + 1024) as u32)
        .with_max_messages(2048.max(4 * workers as u32 + 64));
    let mpf = Mpf::init(cfg).expect("facility init");
    let arbiter_pid = ProcessId::from_index(workers);

    let results = run_processes_collect(workers + 1, |pid| {
        if pid == arbiter_pid {
            Some(arbiter(&mpf, pid, n, workers))
        } else {
            worker(&mpf, pid, a, b, workers);
            None
        }
    });
    results
        .into_iter()
        .flatten()
        .next()
        .expect("arbiter produced the solution")
}

fn worker(mpf: &Mpf, pid: ProcessId, a: &Matrix, b: &[f64], workers: usize) {
    let me = pid.index();
    let n = a.n();
    let (lo, hi) = partition(n, workers, me);

    // Local copy of this worker's partition only — message passing means
    // no shared matrix.
    let mut rows: Vec<Vec<f64>> = (lo..hi).map(|r| a.row(r).to_vec()).collect();
    let mut rhs: Vec<f64> = b[lo..hi].to_vec();
    let mut used = vec![false; hi - lo];
    let mut pivot_col = vec![usize::MAX; hi - lo];

    let cand_tx = mpf.sender(pid, "gj:cand").expect("open cand");
    let winner_rx = mpf
        .receiver(pid, "gj:winner", Protocol::Broadcast)
        .expect("open winner");
    let pivot_tx = mpf.sender(pid, "gj:pivot").expect("open pivot tx");
    let pivot_rx = mpf
        .receiver(pid, "gj:pivot", Protocol::Broadcast)
        .expect("open pivot rx");
    let x_tx = mpf.sender(pid, "gj:x").expect("open x");

    for k in 0..n {
        // Local pivot candidate.
        let best = (0..rows.len()).filter(|&r| !used[r]).max_by(|&r1, &r2| {
            f64::abs(rows[r1][k])
                .partial_cmp(&f64::abs(rows[r2][k]))
                .expect("finite")
        });
        let magnitude = best.map_or(-1.0, |r| f64::abs(rows[r][k]));
        cand_tx
            .send(&wire::u32_f64_to_bytes(me as u32, magnitude))
            .expect("send candidate");

        // Arbiter's verdict.
        let verdict = winner_rx.recv_vec().expect("recv winner");
        let winner = wire::bytes_to_u32(&verdict) as usize;

        let mut current_pivot = usize::MAX;
        if winner == me {
            let r = best.expect("winner must hold a candidate");
            used[r] = true;
            pivot_col[r] = k;
            current_pivot = r;
            let mut msg = rows[r].clone();
            msg.push(rhs[r]);
            pivot_tx
                .send(&wire::f64s_to_bytes(&msg))
                .expect("broadcast pivot row");
        }

        // Everyone (winner included) consumes the broadcast pivot row.
        let pivot_msg = wire::bytes_to_f64s(&pivot_rx.recv_vec().expect("recv pivot"));
        let (piv_row, piv_b) = (&pivot_msg[..n], pivot_msg[n]);

        // Gauss-Jordan sweeps *every* row except the pivot itself —
        // including rows that were pivots of earlier columns (that is what
        // diagonalizes A rather than merely triangularizing it).
        for r in 0..rows.len() {
            if r == current_pivot {
                continue;
            }
            let factor = rows[r][k] / piv_row[k];
            if factor != 0.0 {
                for c in 0..n {
                    rows[r][c] -= factor * piv_row[c];
                }
                rhs[r] -= factor * piv_b;
            }
        }
    }

    // Ship solution fragments.
    for r in 0..rows.len() {
        let k = pivot_col[r];
        debug_assert_ne!(k, usize::MAX, "every row pivoted exactly once");
        let x_val = rhs[r] / rows[r][k];
        x_tx.send(&wire::u32_f64_to_bytes(k as u32, x_val))
            .expect("send solution fragment");
    }
}

fn arbiter(mpf: &Mpf, pid: ProcessId, n: usize, workers: usize) -> Vec<f64> {
    let cand_rx = mpf
        .receiver(pid, "gj:cand", Protocol::Fcfs)
        .expect("open cand rx");
    let winner_tx = mpf.sender(pid, "gj:winner").expect("open winner tx");
    let x_rx = mpf
        .receiver(pid, "gj:x", Protocol::Fcfs)
        .expect("open x rx");

    for _k in 0..n {
        let mut best_worker = u32::MAX;
        let mut best_val = -1.0f64;
        for _ in 0..workers {
            let (w, v) = wire::bytes_to_u32_f64(&cand_rx.recv_vec().expect("recv candidate"));
            // Deterministic tie-break on worker index.
            if v > best_val || (v == best_val && w < best_worker) {
                best_val = v;
                best_worker = w;
            }
        }
        assert!(best_val >= 0.0, "someone must hold an unused row");
        winner_tx
            .send(&wire::u32_to_bytes(best_worker))
            .expect("announce winner");
    }

    let mut x = vec![0.0; n];
    for _ in 0..n {
        let (k, v) = wire::bytes_to_u32_f64(&x_rx.recv_vec().expect("recv fragment"));
        x[k as usize] = v;
    }
    x
}

/// Shared-memory baseline: the same pivoting algorithm over a shared
/// matrix, synchronized with barriers — the paradigm the paper's
/// introduction contrasts message passing against.
pub fn solve_shared(a: &Matrix, b: &[f64], workers: usize) -> Vec<f64> {
    use std::sync::Mutex;

    let n = a.n();
    assert_eq!(b.len(), n);
    struct Row {
        coeffs: Vec<f64>,
        rhs: f64,
        used: bool,
        pivot_col: usize,
    }
    let rows: Vec<Mutex<Row>> = (0..n)
        .map(|r| {
            Mutex::new(Row {
                coeffs: a.row(r).to_vec(),
                rhs: b[r],
                used: false,
                pivot_col: usize::MAX,
            })
        })
        .collect();
    // Per-worker candidate slots and the shared pivot-row slot.
    let candidates: Vec<Mutex<(f64, usize)>> =
        (0..workers).map(|_| Mutex::new((-1.0, 0))).collect();
    let pivot_slot: Mutex<(Vec<f64>, f64, usize)> = Mutex::new((Vec::new(), 0.0, 0));
    let barrier = SpinBarrier::new(workers as u32);

    run_processes_collect(workers, |pid| {
        let me = pid.index();
        let (lo, hi) = partition(n, workers, me);
        for k in 0..n {
            // Phase 1: local candidates.
            let mut best = (-1.0, lo);
            for r in lo..hi {
                let row = rows[r].lock().unwrap();
                if !row.used && f64::abs(row.coeffs[k]) > best.0 {
                    best = (f64::abs(row.coeffs[k]), r);
                }
            }
            *candidates[me].lock().unwrap() = best;
            barrier.wait();

            // Phase 2: one worker arbitrates and publishes the pivot row.
            if me == 0 {
                let (mut best_val, mut best_row) = (-1.0, usize::MAX);
                for c in &candidates {
                    let (v, r) = *c.lock().unwrap();
                    if v > best_val {
                        best_val = v;
                        best_row = r;
                    }
                }
                let mut row = rows[best_row].lock().unwrap();
                row.used = true;
                row.pivot_col = k;
                *pivot_slot.lock().unwrap() = (row.coeffs.clone(), row.rhs, best_row);
            }
            barrier.wait();

            // Phase 3: sweep every row except the current pivot (see the
            // message-passing worker for why used rows are included).
            let (piv_row, piv_b, piv_global_row) = {
                let g = pivot_slot.lock().unwrap();
                (g.0.clone(), g.1, g.2)
            };
            for r in lo..hi {
                if r == piv_global_row {
                    continue;
                }
                let mut row = rows[r].lock().unwrap();
                let factor = row.coeffs[k] / piv_row[k];
                if factor != 0.0 {
                    for c in 0..n {
                        row.coeffs[c] -= factor * piv_row[c];
                    }
                    row.rhs -= factor * piv_b;
                }
            }
            barrier.wait();
        }
    });

    let mut x = vec![0.0; n];
    for r in 0..n {
        let row = rows[r].lock().unwrap();
        x[row.pivot_col] = row.rhs / row.coeffs[row.pivot_col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::{random_rhs, residual_inf};

    const TOL: f64 = 1e-8;

    #[test]
    fn partition_covers_everything_contiguously() {
        for (n, parts) in [(10usize, 3usize), (7, 7), (5, 8), (96, 16)] {
            let mut covered = 0;
            for i in 0..parts {
                let (lo, hi) = partition(n, parts, i);
                assert_eq!(lo, covered, "partitions must be contiguous");
                covered = hi;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn sequential_solves_known_system() {
        // 2x + y = 5; x - y = 1  →  x = 2, y = 1.
        let a = Matrix::from_vec(2, vec![2.0, 1.0, 1.0, -1.0]);
        let x = solve_sequential(&a, &[5.0, 1.0]);
        assert!(
            (x[0] - 2.0).abs() < TOL && (x[1] - 1.0).abs() < TOL,
            "{x:?}"
        );
    }

    #[test]
    fn sequential_small_residuals_on_random_systems() {
        for seed in 0..5 {
            let a = Matrix::random_diag_dominant(24, seed);
            let b = random_rhs(24, seed);
            let x = solve_sequential(&a, &b);
            assert!(residual_inf(&a, &x, &b) < TOL, "seed {seed}");
        }
    }

    #[test]
    fn sequential_needs_pivoting() {
        // Zero on the natural first pivot position: only partial pivoting
        // survives this.
        let a = Matrix::from_vec(2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve_sequential(&a, &[3.0, 7.0]);
        assert!((x[0] - 7.0).abs() < TOL && (x[1] - 3.0).abs() < TOL);
    }

    #[test]
    fn mpf_matches_sequential() {
        for workers in [1usize, 2, 3, 4] {
            let a = Matrix::random_diag_dominant(16, 99);
            let b = random_rhs(16, 99);
            let seq = solve_sequential(&a, &b);
            let par = solve_mpf(&a, &b, workers);
            for (s, p) in seq.iter().zip(&par) {
                assert!((s - p).abs() < 1e-6, "workers={workers}: {s} vs {p}");
            }
        }
    }

    #[test]
    fn mpf_more_workers_than_rows() {
        let a = Matrix::random_diag_dominant(3, 5);
        let b = random_rhs(3, 5);
        let x = solve_mpf(&a, &b, 6);
        assert!(residual_inf(&a, &x, &b) < TOL);
    }

    #[test]
    fn shared_matches_sequential() {
        for workers in [1usize, 2, 4] {
            let a = Matrix::random_diag_dominant(16, 7);
            let b = random_rhs(16, 7);
            let seq = solve_sequential(&a, &b);
            let par = solve_shared(&a, &b, workers);
            for (s, p) in seq.iter().zip(&par) {
                assert!((s - p).abs() < 1e-6, "workers={workers}");
            }
        }
    }

    #[test]
    fn mpf_residual_on_larger_system() {
        let a = Matrix::random_diag_dominant(32, 123);
        let b = random_rhs(32, 123);
        let x = solve_mpf(&a, &b, 4);
        assert!(residual_inf(&a, &x, &b) < 1e-7);
    }
}
