//! Parallel SOR Poisson solver (paper §4, Figure 8).
//!
//! "If the grid of points contains P×P points, it is partitioned into N×N
//! subgrids of size P/N × P/N.  Each subgrid is assigned to a processor,
//! and each processor iterates over its subgrid.  On each iteration, the
//! boundaries of each sub-grid must be exchanged with the four neighboring
//! processors.  In addition, the processors determine if the local
//! sub-grid has converged and send this status information to a monitoring
//! process."
//!
//! "The interprocess communication among neighbors corresponds naturally
//! to FCFS LNVC's.  Similarly, BROADCAST LNVC's were used to broadcast
//! convergence information from the monitoring process."
//!
//! [`solve_mpf`] follows that structure exactly: one FCFS LNVC per
//! directed neighbour edge, an FCFS LNVC funnelling convergence status to
//! the monitor, and a BROADCAST LNVC for the monitor's verdict.  Subgrids
//! relax with ghost values from the previous exchange (block-chaotic
//! relaxation — the standard distributed-memory SOR the hypercube original
//! used).  [`solve_shared`] is the shared-memory baseline: red-black SOR
//! with barriers.

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
use mpf_shm::barrier::SpinBarrier;
use mpf_shm::process::{run_processes, run_processes_collect};

use crate::gauss_jordan::partition;
use crate::grid::{optimal_omega, sor_update, Grid};
use crate::wire;

/// Result of a parallel solve.
#[derive(Debug)]
pub struct SorRun {
    /// The assembled solution grid.
    pub grid: Grid,
    /// Iterations executed.
    pub iters: usize,
}

/// Verdict codes on the monitor's broadcast LNVC.
const CONTINUE: u8 = 1;
const STOP: u8 = 0;

fn edge_name(from: usize, to: usize) -> String {
    format!("sor:e:{from}:{to}")
}

/// Message-passing SOR on a `p × p` interior grid with `n × n` worker
/// processes plus a monitor.  Runs until the global maximum update falls
/// below `tol` or `max_iters` is reached (set `tol = 0.0` to time a fixed
/// iteration count).
pub fn solve_mpf(p: usize, n: usize, tol: f64, max_iters: usize) -> SorRun {
    assert!(
        n >= 1 && n <= p,
        "need at least one grid point per worker in each dimension"
    );
    let workers = n * n;
    let cfg = MpfConfig::new((4 * workers + 8) as u32, workers as u32 + 1)
        .with_block_payload(64)
        .with_total_blocks(((p * p * 8) / 64 + 16 * p + 4096) as u32)
        .with_max_messages((8 * workers + 256) as u32)
        .with_max_connections((12 * workers + 64) as u32);
    let mpf = Mpf::init(cfg).expect("facility init");
    let monitor_pid = ProcessId::from_index(workers);

    let results = run_processes_collect(workers + 1, |pid| {
        if pid == monitor_pid {
            Some(monitor(&mpf, pid, p, n, tol, max_iters))
        } else {
            sor_worker(&mpf, pid, p, n, max_iters);
            None
        }
    });
    results
        .into_iter()
        .flatten()
        .next()
        .expect("monitor produced the solution")
}

/// The (row, col) position of worker `w` in the `n × n` process grid.
fn pos(w: usize, n: usize) -> (usize, usize) {
    (w / n, w % n)
}

fn sor_worker(mpf: &Mpf, pid: ProcessId, p: usize, n: usize, max_iters: usize) {
    let me = pid.index();
    let (pi, pj) = pos(me, n);
    // Interior ranges (1-based grid coordinates).
    let (ilo, ihi) = {
        let (a, b) = partition(p, n, pi);
        (a + 1, b)
    };
    let (jlo, jhi) = {
        let (a, b) = partition(p, n, pj);
        (a + 1, b)
    };
    // Block-chaotic relaxation (ghost values one exchange stale) is not
    // stable at the sequential optimum ω → 2; under-relax as the process
    // grid gets finer.  n = 1 has no stale boundaries and keeps the
    // sequential optimum.
    let omega = if n == 1 {
        optimal_omega(p)
    } else {
        optimal_omega(p).min(1.0 + 1.0 / n as f64)
    };

    // Full-size local grid; only our block and its ghost ring are used.
    let mut grid = Grid::zeros(p);

    // Neighbour ids: up/down/left/right in the process grid.
    let up = (pi > 0).then(|| (pi - 1) * n + pj);
    let down = (pi + 1 < n).then(|| (pi + 1) * n + pj);
    let left = (pj > 0).then(|| pi * n + (pj - 1));
    let right = (pj + 1 < n).then(|| pi * n + (pj + 1));

    // One FCFS LNVC per directed edge.
    let mut edge_tx = Vec::new();
    let mut edge_rx = Vec::new();
    for nb in [up, down, left, right].into_iter().flatten() {
        edge_tx.push((nb, mpf.sender(pid, &edge_name(me, nb)).expect("edge tx")));
        edge_rx.push((
            nb,
            mpf.receiver(pid, &edge_name(nb, me), Protocol::Fcfs)
                .expect("edge rx"),
        ));
    }
    let conv_tx = mpf.sender(pid, "sor:conv").expect("conv tx");
    let verdict_rx = mpf
        .receiver(pid, "sor:verdict", Protocol::Broadcast)
        .expect("verdict rx");
    let result_tx = mpf.sender(pid, "sor:result").expect("result tx");

    for _iter in 0..max_iters {
        // Exchange boundaries: sends are asynchronous, so everyone sends
        // all four strips before receiving any (no deadlock).
        for (nb, tx) in &edge_tx {
            let strip: Vec<f64> = if Some(*nb) == up {
                (jlo..=jhi).map(|j| grid.get(ilo, j)).collect()
            } else if Some(*nb) == down {
                (jlo..=jhi).map(|j| grid.get(ihi, j)).collect()
            } else if Some(*nb) == left {
                (ilo..=ihi).map(|i| grid.get(i, jlo)).collect()
            } else {
                (ilo..=ihi).map(|i| grid.get(i, jhi)).collect()
            };
            tx.send(&wire::f64s_to_bytes(&strip)).expect("send strip");
        }
        for (nb, rx) in &edge_rx {
            let strip = wire::bytes_to_f64s(&rx.recv_vec().expect("recv strip"));
            if Some(*nb) == up {
                for (k, j) in (jlo..=jhi).enumerate() {
                    grid.set(ilo - 1, j, strip[k]);
                }
            } else if Some(*nb) == down {
                for (k, j) in (jlo..=jhi).enumerate() {
                    grid.set(ihi + 1, j, strip[k]);
                }
            } else if Some(*nb) == left {
                for (k, i) in (ilo..=ihi).enumerate() {
                    grid.set(i, jlo - 1, strip[k]);
                }
            } else {
                for (k, i) in (ilo..=ihi).enumerate() {
                    grid.set(i, jhi + 1, strip[k]);
                }
            }
        }

        // Relax our subgrid.
        let mut delta: f64 = 0.0;
        for i in ilo..=ihi {
            for j in jlo..=jhi {
                delta = delta.max(sor_update(&mut grid, i, j, omega));
            }
        }

        // Convergence status to the monitor; block on the verdict.
        conv_tx
            .send(&wire::f64s_to_bytes(&[delta]))
            .expect("send status");
        let verdict = verdict_rx.recv_vec().expect("recv verdict");
        if verdict[0] == STOP {
            break;
        }
    }

    // Ship our block to the monitor: (worker, then row-major block data).
    let mut payload = Vec::with_capacity(4 + (ihi - ilo + 1) * (jhi - jlo + 1) * 8);
    payload.extend_from_slice(&wire::u32_to_bytes(me as u32));
    for i in ilo..=ihi {
        for j in jlo..=jhi {
            payload.extend_from_slice(&grid.get(i, j).to_le_bytes());
        }
    }
    result_tx.send(&payload).expect("send result block");
}

fn monitor(mpf: &Mpf, pid: ProcessId, p: usize, n: usize, tol: f64, max_iters: usize) -> SorRun {
    let workers = n * n;
    let conv_rx = mpf
        .receiver(pid, "sor:conv", Protocol::Fcfs)
        .expect("conv rx");
    let verdict_tx = mpf.sender(pid, "sor:verdict").expect("verdict tx");
    let result_rx = mpf
        .receiver(pid, "sor:result", Protocol::Fcfs)
        .expect("result rx");

    let mut iters = 0;
    for iter in 1..=max_iters {
        iters = iter;
        let mut global_delta: f64 = 0.0;
        for _ in 0..workers {
            let delta = wire::bytes_to_f64s(&conv_rx.recv_vec().expect("recv status"))[0];
            global_delta = global_delta.max(delta);
        }
        let stop = global_delta < tol || iter == max_iters;
        verdict_tx
            .send(&[if stop { STOP } else { CONTINUE }])
            .expect("broadcast verdict");
        if stop {
            break;
        }
    }

    // Assemble the solution from the workers' blocks.
    let mut grid = Grid::zeros(p);
    for _ in 0..workers {
        let msg = result_rx.recv_vec().expect("recv result block");
        let w = wire::bytes_to_u32(&msg[..4]) as usize;
        let data = wire::bytes_to_f64s(&msg[4..]);
        let (wi, wj) = pos(w, n);
        let (ilo, ihi) = {
            let (a, b) = partition(p, n, wi);
            (a + 1, b)
        };
        let (jlo, jhi) = {
            let (a, b) = partition(p, n, wj);
            (a + 1, b)
        };
        let mut k = 0;
        for i in ilo..=ihi {
            for j in jlo..=jhi {
                grid.set(i, j, data[k]);
                k += 1;
            }
        }
    }
    SorRun { grid, iters }
}

/// A grid of atomic cells for the shared-memory baseline.  Red-black
/// ordering guarantees each phase's loads and stores touch disjoint cells,
/// so `Relaxed` atomics (with barrier-provided phase ordering) are exactly
/// the right tool — no locks on the data path, the shared-memory idiom
/// the paper contrasts MPF against.
struct AtomicGrid {
    p: usize,
    cells: Vec<std::sync::atomic::AtomicU64>,
}

impl AtomicGrid {
    fn zeros(p: usize) -> Self {
        Self {
            p,
            cells: (0..(p + 2) * (p + 2))
                .map(|_| std::sync::atomic::AtomicU64::new(0f64.to_bits()))
                .collect(),
        }
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        f64::from_bits(self.cells[i * (self.p + 2) + j].load(std::sync::atomic::Ordering::Relaxed))
    }

    #[inline]
    fn set(&self, i: usize, j: usize, v: f64) {
        self.cells[i * (self.p + 2) + j].store(v.to_bits(), std::sync::atomic::Ordering::Relaxed);
    }

    /// One SOR update at `(i, j)`; returns `|Δu|`.
    fn sor_update(&self, i: usize, j: usize, omega: f64) -> f64 {
        let h = 1.0 / (self.p + 1) as f64;
        let f = crate::grid::source_f(i as f64 * h, j as f64 * h);
        let gauss = 0.25
            * (self.get(i - 1, j) + self.get(i + 1, j) + self.get(i, j - 1) + self.get(i, j + 1)
                - h * h * f);
        let old = self.get(i, j);
        let new = old + omega * (gauss - old);
        self.set(i, j, new);
        f64::abs(new - old)
    }

    fn into_grid(self) -> Grid {
        let mut g = Grid::zeros(self.p);
        for i in 0..self.p + 2 {
            for j in 0..self.p + 2 {
                g.set(
                    i,
                    j,
                    f64::from_bits(
                        self.cells[i * (self.p + 2) + j].load(std::sync::atomic::Ordering::Relaxed),
                    ),
                );
            }
        }
        g
    }
}

/// Shared-memory baseline: red-black SOR with barriers.
///
/// Red points (`(i + j)` even) read only black neighbours and vice versa,
/// so within one colour phase every store targets a cell no other thread
/// loads or stores — the classic data-race-free colouring.
pub fn solve_shared(p: usize, threads: usize, tol: f64, max_iters: usize) -> SorRun {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    assert!(threads >= 1 && threads <= p);
    let shared = AtomicGrid::zeros(p);
    let omega = optimal_omega(p);
    let barrier = SpinBarrier::new(threads as u32);
    let max_delta_bits = AtomicU64::new(0);
    let iters_done = AtomicUsize::new(max_iters);

    run_processes(threads, |pid| {
        let me = pid.index();
        let (lo, hi) = partition(p, threads, me);
        let (ilo, ihi) = (lo + 1, hi);
        for iter in 1..=max_iters {
            if iter > iters_done.load(Ordering::Acquire) {
                break;
            }
            let mut delta: f64 = 0.0;
            for colour in 0..2usize {
                for i in ilo..=ihi {
                    for j in 1..=p {
                        if (i + j) % 2 == colour {
                            delta = delta.max(shared.sor_update(i, j, omega));
                        }
                    }
                }
                barrier.wait();
            }
            // Reduce the per-iteration delta; the leader decides.
            max_delta_bits.fetch_max(delta.to_bits(), Ordering::AcqRel);
            if barrier.wait() {
                let global = f64::from_bits(max_delta_bits.swap(0, Ordering::AcqRel));
                if global < tol {
                    iters_done.store(iter, Ordering::Release);
                }
            }
            barrier.wait();
        }
    });

    let iters = iters_done.load(Ordering::Acquire).min(max_iters);
    SorRun {
        grid: shared.into_grid(),
        iters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::solve_sequential;

    #[test]
    fn pos_roundtrip() {
        assert_eq!(pos(0, 2), (0, 0));
        assert_eq!(pos(3, 2), (1, 1));
        assert_eq!(pos(5, 3), (1, 2));
    }

    #[test]
    fn mpf_single_worker_matches_sequential_accuracy() {
        let run = solve_mpf(9, 1, 1e-9, 2000);
        assert!(run.iters < 2000);
        let err = run.grid.error_vs_analytic();
        assert!(err < 5e-2, "error {err}");
    }

    #[test]
    fn mpf_2x2_converges_to_analytic() {
        let run = solve_mpf(17, 2, 1e-9, 4000);
        assert!(run.iters < 4000, "did not converge");
        let err = run.grid.error_vs_analytic();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn mpf_3x3_converges() {
        let run = solve_mpf(17, 3, 1e-9, 5000);
        let err = run.grid.error_vs_analytic();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn mpf_matches_sequential_solution_closely() {
        let mut seq = Grid::zeros(17);
        solve_sequential(&mut seq, 1e-10, 5000);
        let par = solve_mpf(17, 2, 1e-10, 5000);
        let mut worst: f64 = 0.0;
        for i in 1..=17 {
            for j in 1..=17 {
                worst = worst.max(f64::abs(seq.get(i, j) - par.grid.get(i, j)));
            }
        }
        assert!(worst < 1e-6, "solutions diverge by {worst}");
    }

    #[test]
    fn paper_figure8_extreme_decomposition_runs() {
        // Figure 8's smallest problem at its largest process grid: 9x9
        // points on 4x4 processes (2-3 point subgrids, communication
        // dominated — the point the paper makes).
        let run = solve_mpf(9, 4, 0.0, 10);
        assert_eq!(run.iters, 10);
    }

    #[test]
    fn fixed_iteration_mode_runs_exactly() {
        let run = solve_mpf(9, 2, 0.0, 25);
        assert_eq!(run.iters, 25);
    }

    #[test]
    fn shared_baseline_converges() {
        let run = solve_shared(17, 3, 1e-9, 5000);
        assert!(run.iters < 5000);
        let err = run.grid.error_vs_analytic();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn shared_single_thread_matches_multi() {
        let a = solve_shared(9, 1, 1e-10, 5000);
        let b = solve_shared(9, 3, 1e-10, 5000);
        let mut worst: f64 = 0.0;
        for i in 1..=9 {
            for j in 1..=9 {
                worst = worst.max(f64::abs(a.grid.get(i, j) - b.grid.get(i, j)));
            }
        }
        assert!(
            worst < 1e-6,
            "red-black result must not depend on threads ({worst})"
        );
    }
}
