//! Dense linear-algebra plumbing for the Gauss-Jordan study: a row-major
//! matrix type, well-conditioned random test systems, and residual checks.

use mpf_shm::SmallRng;

/// A dense, row-major `n × n` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    n: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// From a row-major vector (length must be `n²`).
    pub fn from_vec(n: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), n * n, "row-major data must be n^2 long");
        Self { n, data }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.n + c]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.n + c] = v;
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.n..(r + 1) * self.n]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.n..(r + 1) * self.n]
    }

    /// `A · x`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|r| self.row(r).iter().zip(x).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// A diagonally dominant random matrix — guaranteed non-singular, so
    /// every generated test system is solvable (the workload generator for
    /// Figure 7).
    pub fn random_diag_dominant(n: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = Self::zeros(n);
        for r in 0..n {
            let mut off_sum = 0.0;
            for c in 0..n {
                if c != r {
                    let v = rng.gen_range(-1.0..1.0);
                    m.set(r, c, v);
                    off_sum += f64::abs(v);
                }
            }
            // Strict dominance with a random sign keeps pivoting honest.
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            m.set(r, r, sign * (off_sum + rng.gen_range(1.0..2.0)));
        }
        m
    }
}

/// Random right-hand side.
pub fn random_rhs(n: usize, seed: u64) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xB5);
    (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

/// `‖A·x − b‖∞` — the residual the correctness tests bound.
pub fn residual_inf(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    a.mul_vec(x)
        .iter()
        .zip(b)
        .map(|(ax, bi)| f64::abs(ax - bi))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_accessors() {
        let mut m = Matrix::zeros(3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        m.row_mut(0)[0] = 1.0;
        assert_eq!(m.get(0, 0), 1.0);
    }

    #[test]
    fn mul_vec_identity() {
        let mut id = Matrix::zeros(4);
        for i in 0..4 {
            id.set(i, i, 1.0);
        }
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(id.mul_vec(&x), x);
    }

    #[test]
    fn random_matrix_is_diagonally_dominant() {
        let m = Matrix::random_diag_dominant(16, 42);
        for r in 0..16 {
            let diag = f64::abs(m.get(r, r));
            let off: f64 = (0..16)
                .filter(|&c| c != r)
                .map(|c| f64::abs(m.get(r, c)))
                .sum();
            assert!(diag > off, "row {r} not dominant");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Matrix::random_diag_dominant(8, 7),
            Matrix::random_diag_dominant(8, 7)
        );
        assert_eq!(random_rhs(8, 7), random_rhs(8, 7));
    }

    #[test]
    #[should_panic(expected = "n^2")]
    fn bad_from_vec_panics() {
        let _ = Matrix::from_vec(2, vec![1.0; 3]);
    }
}
