//! The elliptic PDE test problem and sequential SOR solver (paper §4,
//! Figure 8 substrate).
//!
//! We solve Poisson's equation `∇²u = f` on the unit square with
//! homogeneous Dirichlet boundaries, discretized on a `(p+2) × (p+2)`
//! five-point stencil grid (`p × p` interior points).  The manufactured
//! solution `u*(x,y) = sin(πx)·sin(πy)` (so `f = −2π²·u*`) lets every
//! solver variant be checked against an analytic answer.

use std::f64::consts::PI;

/// A square grid with boundary, row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    /// Interior points per side.
    p: usize,
    /// `(p+2)²` values including the boundary ring.
    u: Vec<f64>,
}

impl Grid {
    /// Zero-initialized grid with `p × p` interior points.
    pub fn zeros(p: usize) -> Self {
        Self {
            p,
            u: vec![0.0; (p + 2) * (p + 2)],
        }
    }

    /// Interior points per side.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Mesh spacing.
    pub fn h(&self) -> f64 {
        1.0 / (self.p + 1) as f64
    }

    /// Value at grid coordinates (0-based including boundary).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.u[i * (self.p + 2) + j]
    }

    /// Sets the value at grid coordinates.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.u[i * (self.p + 2) + j] = v;
    }

    /// Maximum absolute error against the manufactured solution.
    pub fn error_vs_analytic(&self) -> f64 {
        let h = self.h();
        let mut worst: f64 = 0.0;
        for i in 1..=self.p {
            for j in 1..=self.p {
                let exact = analytic_u(i as f64 * h, j as f64 * h);
                worst = worst.max(f64::abs(self.get(i, j) - exact));
            }
        }
        worst
    }
}

/// The manufactured solution `u*`.
pub fn analytic_u(x: f64, y: f64) -> f64 {
    (PI * x).sin() * (PI * y).sin()
}

/// Its source term `f = ∇²u* = −2π²·u*`.
pub fn source_f(x: f64, y: f64) -> f64 {
    -2.0 * PI * PI * analytic_u(x, y)
}

/// The optimal SOR relaxation factor for the 5-point Laplacian on a
/// `p × p` interior grid.
pub fn optimal_omega(p: usize) -> f64 {
    let rho = (PI / (p + 1) as f64).cos();
    2.0 / (1.0 + (1.0 - rho * rho).sqrt())
}

/// One in-place SOR update at `(i, j)`; returns `|Δu|`.
#[inline]
pub fn sor_update(grid: &mut Grid, i: usize, j: usize, omega: f64) -> f64 {
    let h = grid.h();
    let f = source_f(i as f64 * h, j as f64 * h);
    let gauss = 0.25
        * (grid.get(i - 1, j) + grid.get(i + 1, j) + grid.get(i, j - 1) + grid.get(i, j + 1)
            - h * h * f);
    let old = grid.get(i, j);
    let new = old + omega * (gauss - old);
    grid.set(i, j, new);
    f64::abs(new - old)
}

/// Sequential SOR: iterates until the max update falls below `tol` (or
/// `max_iters`).  Returns the iteration count taken.
pub fn solve_sequential(grid: &mut Grid, tol: f64, max_iters: usize) -> usize {
    let omega = optimal_omega(grid.p());
    for iter in 1..=max_iters {
        let mut delta: f64 = 0.0;
        for i in 1..=grid.p() {
            for j in 1..=grid.p() {
                delta = delta.max(sor_update(grid, i, j, omega));
            }
        }
        if delta < tol {
            return iter;
        }
    }
    max_iters
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry() {
        let g = Grid::zeros(9);
        assert_eq!(g.p(), 9);
        assert!((g.h() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn boundary_stays_zero() {
        let mut g = Grid::zeros(9);
        solve_sequential(&mut g, 1e-8, 500);
        for k in 0..=10 {
            assert_eq!(g.get(0, k), 0.0);
            assert_eq!(g.get(10, k), 0.0);
            assert_eq!(g.get(k, 0), 0.0);
            assert_eq!(g.get(k, 10), 0.0);
        }
    }

    #[test]
    fn sequential_converges_to_analytic_solution() {
        // Discretization error is O(h²); on a 17×17 interior grid h ≈ 1/18.
        let mut g = Grid::zeros(17);
        let iters = solve_sequential(&mut g, 1e-9, 2000);
        assert!(iters < 2000, "must converge before the cap");
        let err = g.error_vs_analytic();
        assert!(
            err < 5e-3,
            "error {err} too large for h²≈{:.4}",
            g.h() * g.h()
        );
    }

    #[test]
    fn finer_grids_are_more_accurate() {
        let mut coarse = Grid::zeros(9);
        let mut fine = Grid::zeros(33);
        solve_sequential(&mut coarse, 1e-10, 5000);
        solve_sequential(&mut fine, 1e-10, 5000);
        assert!(fine.error_vs_analytic() < coarse.error_vs_analytic());
    }

    #[test]
    fn omega_in_valid_sor_range() {
        for p in [9usize, 17, 33, 65] {
            let w = optimal_omega(p);
            assert!((1.0..2.0).contains(&w), "omega {w} out of range for p={p}");
        }
    }

    #[test]
    fn sor_beats_gauss_seidel_iterations() {
        let run = |omega_override: Option<f64>| {
            let mut g = Grid::zeros(17);
            let omega = omega_override.unwrap_or_else(|| optimal_omega(17));
            let mut iters = 0;
            for _ in 0..5000 {
                iters += 1;
                let mut delta: f64 = 0.0;
                for i in 1..=17 {
                    for j in 1..=17 {
                        delta = delta.max(sor_update(&mut g, i, j, omega));
                    }
                }
                if delta < 1e-9 {
                    break;
                }
            }
            iters
        };
        let sor = run(None);
        let gs = run(Some(1.0));
        assert!(sor < gs, "SOR ({sor}) should beat Gauss-Seidel ({gs})");
    }
}
