//! Single-OS-process integration tests for the ipc backend.
//!
//! `IpcMpf::attach_view` maps the same region file a second time, so one
//! test process can exercise the multi-process code paths — separate
//! process slots, separate base addresses — without fork.  Genuine
//! multi-process coverage lives in `cross_process.rs`.

use std::time::Duration;

use mpf::{MpfConfig, MpfError, Protocol};
use mpf_ipc::IpcMpf;

fn region(name: &str) -> IpcMpf {
    let cfg = MpfConfig::new(8, 4)
        .with_block_payload(64)
        .with_total_blocks(64)
        .with_max_messages(32)
        .with_max_connections(16);
    IpcMpf::create(name, &cfg).expect("create region")
}

#[test]
fn fcfs_roundtrip_within_one_region() {
    let m = region("loop-fcfs");
    let tx = m.open_send("pipe").unwrap();
    let rx = m.open_receive("pipe", Protocol::Fcfs).unwrap();

    assert!(!m.check_receive(rx).unwrap());
    m.message_send(tx, b"first").unwrap();
    m.message_send(tx, b"second").unwrap();
    assert!(m.check_receive(rx).unwrap());

    let mut buf = [0u8; 64];
    assert_eq!(m.message_receive(rx, &mut buf).unwrap(), 5);
    assert_eq!(&buf[..5], b"first");
    assert_eq!(m.message_receive(rx, &mut buf).unwrap(), 6);
    assert_eq!(&buf[..6], b"second");

    m.close_send(tx).unwrap();
    m.close_receive(rx).unwrap();
    assert_eq!(m.live_lnvcs(), 0, "closing both ends deletes the LNVC");
}

#[test]
fn fcfs_delivers_to_exactly_one_view() {
    let a = region("loop-fcfs-one");
    let b = a.attach_view().expect("second view");
    assert_ne!(a.pid(), b.pid(), "views get distinct process slots");

    let tx = a.open_send("work").unwrap();
    let ra = a.open_receive("work", Protocol::Fcfs).unwrap();
    let rb = b.open_receive("work", Protocol::Fcfs).unwrap();

    a.message_send(tx, b"job").unwrap();
    let mut buf = [0u8; 16];
    let got_a = a.try_message_receive(ra, &mut buf).unwrap();
    let got_b = b.try_message_receive(rb, &mut buf).unwrap();
    assert!(
        got_a.is_some() ^ got_b.is_some(),
        "FCFS message must reach exactly one receiver (a={got_a:?} b={got_b:?})"
    );
}

#[test]
fn broadcast_reaches_every_view_but_not_late_joiners() {
    let a = region("loop-bcast");
    let b = a.attach_view().unwrap();
    let c = a.attach_view().unwrap();

    let tx = a.open_send("news").unwrap();
    let ra = a.open_receive("news", Protocol::Broadcast).unwrap();
    let rb = b.open_receive("news", Protocol::Broadcast).unwrap();

    a.message_send(tx, b"early").unwrap();
    // c joins after the send: per the paper it must only see later traffic.
    let rc = c.open_receive("news", Protocol::Broadcast).unwrap();
    a.message_send(tx, b"late").unwrap();

    let mut buf = [0u8; 16];
    assert_eq!(a.message_receive(ra, &mut buf).unwrap(), 5);
    assert_eq!(&buf[..5], b"early");
    assert_eq!(b.message_receive(rb, &mut buf).unwrap(), 5);
    assert_eq!(&buf[..5], b"early");

    assert_eq!(c.message_receive(rc, &mut buf).unwrap(), 4);
    assert_eq!(&buf[..4], b"late", "late joiner skips pre-join messages");
    assert_eq!(a.message_receive(ra, &mut buf).unwrap(), 4);
    assert_eq!(b.message_receive(rb, &mut buf).unwrap(), 4);
}

#[test]
fn views_map_at_distinct_addresses_and_interoperate() {
    // Position-independence: the same bytes are mapped at two different
    // virtual addresses, and every primitive works through either view
    // because the region stores only u32 indices, never pointers.
    let a = region("loop-pi");
    let b = a.attach_view().unwrap();
    assert_ne!(
        a.base_addr(),
        b.base_addr(),
        "two mappings of one file should land at different bases"
    );
    assert_eq!(a.region_bytes(), b.region_bytes());

    let tx = a.open_send("xaddr").unwrap();
    let rx = b.open_receive("xaddr", Protocol::Fcfs).unwrap();
    for i in 0..32u32 {
        let payload = vec![i as u8; (i as usize % 96) + 1];
        a.message_send(tx, &payload).unwrap();
        let mut buf = [0u8; 128];
        let n = b.message_receive(rx, &mut buf).unwrap();
        assert_eq!(&buf[..n], &payload[..], "case {i}");
    }
    // And the reverse direction, ids minted through one view resolved
    // through... the same view, but the data written via the other base.
    let back_tx = b.open_send("xaddr-back").unwrap();
    let back_rx = a.open_receive("xaddr-back", Protocol::Fcfs).unwrap();
    b.message_send(back_tx, b"pong").unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(a.message_receive(back_rx, &mut buf).unwrap(), 4);
    assert_eq!(&buf[..4], b"pong");
}

#[test]
fn buffer_too_small_keeps_the_message_queued() {
    let m = region("loop-small");
    let tx = m.open_send("big").unwrap();
    let rx = m.open_receive("big", Protocol::Fcfs).unwrap();
    m.message_send(tx, &[7u8; 100]).unwrap();

    let mut tiny = [0u8; 8];
    match m.try_message_receive(rx, &mut tiny) {
        Err(MpfError::BufferTooSmall { needed }) => assert_eq!(needed, 100),
        other => panic!("expected BufferTooSmall, got {other:?}"),
    }
    // The message is still there for a properly sized buffer.
    let mut big = [0u8; 128];
    assert_eq!(m.message_receive(rx, &mut big).unwrap(), 100);
}

#[test]
fn message_too_large_is_rejected_up_front() {
    let m = region("loop-huge");
    let tx = m.open_send("huge").unwrap();
    let _rx = m.open_receive("huge", Protocol::Fcfs).unwrap();
    let max = 64 * 64; // block_payload * total_blocks
    let err = m.message_send(tx, &vec![0u8; max + 1]).unwrap_err();
    assert!(matches!(err, MpfError::MessageTooLarge { .. }), "{err:?}");
}

#[test]
fn blocks_are_conserved_across_send_receive_cycles() {
    let m = region("loop-blocks");
    let free0 = m.free_blocks();
    let tx = m.open_send("conserve").unwrap();
    let rx = m.open_receive("conserve", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 256];
    for round in 0..50usize {
        let len = (round * 13) % 200 + 1;
        m.message_send(tx, &vec![round as u8; len]).unwrap();
        assert_eq!(m.message_receive(rx, &mut buf).unwrap(), len);
    }
    m.close_send(tx).unwrap();
    m.close_receive(rx).unwrap();
    assert_eq!(m.free_blocks(), free0, "every block returned to the pool");
}

#[test]
fn lnvc_slots_are_reused_after_deletion() {
    let m = region("loop-reuse");
    // Exhaust all 8 LNVC descriptors.
    let ids: Vec<_> = (0..8)
        .map(|i| m.open_send(&format!("ch{i}")).unwrap())
        .collect();
    let err = m.open_send("one-too-many").unwrap_err();
    assert!(matches!(err, MpfError::LnvcsExhausted), "{err:?}");

    // Closing the only connection deletes the conversation; the slot
    // must be reusable and the stale id must be refused (generation).
    m.close_send(ids[3]).unwrap();
    let fresh = m.open_send("replacement").unwrap();
    assert_eq!(m.close_send(ids[3]).unwrap_err(), MpfError::UnknownLnvc);
    m.message_send(fresh, b"x").unwrap();
}

#[test]
fn send_with_no_receivers_queues_for_future_fcfs() {
    let m = region("loop-early-send");
    let tx = m.open_send("mailbox").unwrap();
    m.message_send(tx, b"waiting for you").unwrap();
    let rx = m.open_receive("mailbox", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 32];
    assert_eq!(m.message_receive(rx, &mut buf).unwrap(), 15);
    assert_eq!(&buf[..15], b"waiting for you");
}

#[test]
fn receive_timeout_returns_would_block() {
    let m = region("loop-timeout");
    let _tx = m.open_send("silence").unwrap();
    let rx = m.open_receive("silence", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 8];
    let err = m
        .message_receive_timeout(rx, &mut buf, Duration::from_millis(50))
        .unwrap_err();
    assert_eq!(err, MpfError::WouldBlock);
}

#[test]
fn duplicate_connections_are_rejected() {
    let m = region("loop-dup");
    let _tx = m.open_send("solo").unwrap();
    assert_eq!(m.open_send("solo").unwrap_err(), MpfError::AlreadyConnected);
    let _rx = m.open_receive("solo", Protocol::Fcfs).unwrap();
    assert_eq!(
        m.open_receive("solo", Protocol::Fcfs).unwrap_err(),
        MpfError::AlreadyConnected
    );
    // Paper footnote 3: one process cannot mix protocols on an LNVC.
    assert_eq!(
        m.open_receive("solo", Protocol::Broadcast).unwrap_err(),
        MpfError::ProtocolConflict
    );
}

#[test]
fn attach_by_name_sees_existing_conversations() {
    let owner = region("loop-attach");
    let tx = owner.open_send("shared").unwrap();
    owner.message_send(tx, b"hello attacher").unwrap();

    let other = IpcMpf::attach("loop-attach").expect("attach by name");
    assert_ne!(other.pid(), owner.pid());
    let rx = other.open_receive("shared", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 32];
    assert_eq!(other.message_receive(rx, &mut buf).unwrap(), 14);
    assert_eq!(&buf[..14], b"hello attacher");
}
