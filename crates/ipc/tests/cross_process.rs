//! Multi-OS-process integration tests.
//!
//! Each test re-executes the current test binary with `--exact
//! helper_<role> --ignored`, so the child really is a separate process
//! with its own address space that knows nothing about the region except
//! its name (passed via `MPF_IPC_REGION`).  The `#[ignore]`d helpers are
//! inert unless that variable is set.

use std::io::Read as _;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use mpf::{MpfConfig, MpfError, Protocol, Reclaimable};
use mpf_ipc::{IpcMpf, RegionInspector};

const REGION_ENV: &str = "MPF_IPC_REGION";

fn unique_region(tag: &str) -> String {
    format!("xp-{tag}-{}", std::process::id())
}

fn create_region(name: &str) -> IpcMpf {
    let cfg = MpfConfig::new(8, 8)
        .with_block_payload(64)
        .with_total_blocks(128)
        .with_max_messages(64)
        .with_max_connections(32);
    IpcMpf::create(name, &cfg).expect("create region")
}

fn spawn_helper(helper: &str, region: &str) -> Child {
    Command::new(std::env::current_exe().expect("current_exe"))
        .args([
            "--exact",
            helper,
            "--ignored",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(REGION_ENV, region)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn helper process")
}

fn finish(mut child: Child, what: &str) {
    let status = child.wait().expect("wait child");
    if !status.success() {
        let mut out = String::new();
        let mut err = String::new();
        if let Some(mut s) = child.stdout.take() {
            let _ = s.read_to_string(&mut out);
        }
        if let Some(mut s) = child.stderr.take() {
            let _ = s.read_to_string(&mut err);
        }
        panic!("{what} exited with {status}\nstdout:\n{out}\nstderr:\n{err}");
    }
}

/// Child role for [`separate_processes_exchange_fcfs_and_broadcast`]:
/// announce readiness over the FCFS circuit, wait for the broadcast,
/// echo it back.
#[test]
#[ignore = "helper: only meaningful when spawned by a parent test"]
fn helper_echo_worker() {
    let Ok(region) = std::env::var(REGION_ENV) else {
        return;
    };
    let m = IpcMpf::attach(&region).expect("attach");
    let results = m.open_send("results").expect("open_send results");
    let news = m
        .open_receive("news", Protocol::Broadcast)
        .expect("open_receive news");

    m.message_send(results, format!("ready:{}", m.pid()).as_bytes())
        .expect("send ready");
    let mut buf = [0u8; 256];
    let n = m
        .message_receive_timeout(news, &mut buf, Duration::from_secs(30))
        .expect("receive broadcast");
    let text = std::str::from_utf8(&buf[..n]).expect("utf8").to_string();
    m.message_send(results, format!("got:{text}:{}", m.pid()).as_bytes())
        .expect("send echo");
}

/// ≥ 2 genuinely separate OS processes exchange FCFS messages (worker →
/// parent over `results`) and BROADCAST messages (parent → both workers
/// over `news`) through one shared named region.
#[test]
fn separate_processes_exchange_fcfs_and_broadcast() {
    let region = unique_region("fanout");
    let m = create_region(&region);
    let results = m.open_receive("results", Protocol::Fcfs).unwrap();
    // Open the broadcast source BEFORE the workers connect so `news`
    // exists; workers' broadcast cursors start at their join point.
    let news = m.open_send("news").unwrap();

    let a = spawn_helper("helper_echo_worker", &region);
    let b = spawn_helper("helper_echo_worker", &region);

    let mut buf = [0u8; 256];
    let mut worker_pids = Vec::new();
    for _ in 0..2 {
        let n = m
            .message_receive_timeout(results, &mut buf, Duration::from_secs(30))
            .expect("ready message");
        let text = std::str::from_utf8(&buf[..n]).unwrap();
        let pid: u32 = text.strip_prefix("ready:").unwrap().parse().unwrap();
        worker_pids.push(pid);
    }
    worker_pids.sort_unstable();
    worker_pids.dedup();
    assert_eq!(worker_pids.len(), 2, "two distinct MPF pids");
    assert!(!worker_pids.contains(&m.pid()));

    // Both workers are connected now, so one broadcast reaches both.
    m.message_send(news, b"fanout-payload").unwrap();

    let mut echoes = Vec::new();
    for _ in 0..2 {
        let n = m
            .message_receive_timeout(results, &mut buf, Duration::from_secs(30))
            .expect("echo message");
        echoes.push(std::str::from_utf8(&buf[..n]).unwrap().to_string());
    }
    echoes.sort();
    for (echo, pid) in echoes.iter().zip(worker_pids.iter()) {
        assert_eq!(echo, &format!("got:fanout-payload:{pid}"));
    }

    finish(a, "worker a");
    finish(b, "worker b");
}

/// Child role for [`killing_a_peer_unblocks_blocked_receivers`]: send one
/// message, then — once the parent confirms it has drained it — grab the
/// LNVC lock, report the seizure on a side channel, and go to sleep
/// holding it.  The parent SIGKILLs this process mid-critical-section.
/// The `ctl`/`seized` handshake makes the ordering deterministic: without
/// it the parent's receive could block on the seized lock while the
/// victim (still alive, just asleep) holds it, and the kill would never
/// be issued.
#[test]
#[ignore = "helper: only meaningful when spawned by a parent test"]
fn helper_victim() {
    let Ok(region) = std::env::var(REGION_ENV) else {
        return;
    };
    let m = IpcMpf::attach(&region).expect("attach");
    let tx = m.open_send("doomed").expect("open_send doomed");
    let ctl = m.open_receive("ctl", Protocol::Fcfs).expect("open ctl");
    let seized = m.open_send("seized").expect("open_send seized");

    m.message_send(tx, b"alive").expect("send");
    let mut buf = [0u8; 8];
    m.message_receive_timeout(ctl, &mut buf, Duration::from_secs(30))
        .expect("go-ahead from parent");
    // Die as rudely as possible: inside the critical section.  `seized`
    // is a different descriptor, so signalling on it is safe while
    // holding `doomed`'s lock.
    m.debug_seize_lnvc_lock(tx).expect("seize lock");
    m.message_send(seized, b"held").expect("report seizure");
    std::thread::sleep(Duration::from_secs(60));
}

/// Killing a peer mid-conversation — while it HOLDS the LNVC lock — must
/// leave the survivor with a clean [`MpfError::PeerDied`], not a hang:
/// the liveness sweep breaks the dead holder's lock, removes its
/// connections, and poisons the conversation.
#[test]
fn killing_a_peer_unblocks_blocked_receivers() {
    let region = unique_region("kill");
    let m = create_region(&region);
    let rx = m.open_receive("doomed", Protocol::Fcfs).unwrap();
    let ctl = m.open_send("ctl").unwrap();
    let seized = m.open_receive("seized", Protocol::Fcfs).unwrap();

    let mut victim = spawn_helper("helper_victim", &region);

    let mut buf = [0u8; 64];
    let n = m
        .message_receive_timeout(rx, &mut buf, Duration::from_secs(30))
        .expect("first message proves the victim is connected");
    assert_eq!(&buf[..n], b"alive");

    // Tell the victim to seize the lock, wait for confirmation that it
    // holds it, then SIGKILL it mid-critical-section.
    m.message_send(ctl, b"go").unwrap();
    m.message_receive_timeout(seized, &mut buf, Duration::from_secs(30))
        .expect("victim reports holding the lock");
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");

    // The survivor's blocked receive must resolve to PeerDied — within
    // the timeout, i.e. no deadlock on the orphaned lock.
    let err = m
        .message_receive_timeout(rx, &mut buf, Duration::from_secs(10))
        .expect_err("conversation must be poisoned");
    match err {
        MpfError::PeerDied { pid } => assert_ne!(pid, m.pid(), "culprit is the victim"),
        other => panic!("expected PeerDied, got {other:?}"),
    }

    // The rest of the region stays usable: new conversations work.
    let tx2 = m.open_send("aftermath").unwrap();
    let rx2 = m.open_receive("aftermath", Protocol::Fcfs).unwrap();
    m.message_send(tx2, b"still standing").unwrap();
    let n = m.message_receive(rx2, &mut buf).unwrap();
    assert_eq!(&buf[..n], b"still standing");
}

/// Child role for [`fcfs_departure_releases_obligations_across_processes`]:
/// a broadcast-only consumer in its own address space.
#[test]
#[ignore = "helper: only meaningful when spawned by a parent test"]
fn helper_broadcast_only_consumer() {
    let Ok(region) = std::env::var(REGION_ENV) else {
        return;
    };
    let m = IpcMpf::attach(&region).expect("attach");
    let flood = m
        .open_receive("flood", Protocol::Broadcast)
        .expect("open flood");
    let ctl = m.open_send("ctl").expect("open ctl");
    m.message_send(ctl, b"joined").expect("ack joined");

    let mut buf = [0u8; 128];
    for _ in 0..20 {
        m.message_receive_timeout(flood, &mut buf, Duration::from_secs(30))
            .expect("receive batch 1");
    }
    m.message_send(ctl, b"batch1").expect("ack batch1");
    for _ in 0..8 {
        m.message_receive_timeout(flood, &mut buf, Duration::from_secs(30))
            .expect("receive batch 2");
    }
    // Leave before acking so the parent's conservation check runs after
    // this receiver is really gone.
    m.close_receive(flood).expect("close flood");
    m.message_send(ctl, b"batch2").expect("ack batch2");
    m.close_send(ctl).expect("close ctl");
}

/// Regression for the FCFS-obligation leak across real process
/// boundaries: a sender floods a conversation whose FCFS receiver (the
/// parent) departs while a broadcast-only consumer (the child process)
/// keeps it alive.  Before the obligation re-evaluation fix the 20
/// batch-1 messages stayed owed to the departed FCFS class forever —
/// read by the child but never reclaimable — and the pool check at the
/// end failed with 20 of 32 blocks pinned.
#[test]
fn fcfs_departure_releases_obligations_across_processes() {
    let region = unique_region("fcfs-leak");
    let cfg = MpfConfig::new(8, 8)
        .with_block_payload(64)
        .with_total_blocks(32)
        .with_max_messages(64)
        .with_max_connections(16);
    let m = IpcMpf::create(&region, &cfg).expect("create region");
    let total = m.free_blocks();

    let flood_tx = m.open_send("flood").expect("open flood send");
    let flood_rf = m
        .open_receive("flood", Protocol::Fcfs)
        .expect("open flood fcfs");
    let ctl = m.open_receive("ctl", Protocol::Fcfs).expect("open ctl");

    let child = spawn_helper("helper_broadcast_only_consumer", &region);
    let mut buf = [0u8; 128];
    let n = m
        .message_receive_timeout(ctl, &mut buf, Duration::from_secs(30))
        .expect("joined ack");
    assert_eq!(&buf[..n], b"joined");

    // Batch 1 is sent while an FCFS receiver is connected, so every
    // message carries an FCFS obligation.
    for i in 0..20u8 {
        m.message_send(flood_tx, &[i]).expect("send batch 1");
    }
    let n = m
        .message_receive_timeout(ctl, &mut buf, Duration::from_secs(30))
        .expect("batch1 ack");
    assert_eq!(&buf[..n], b"batch1");

    // The last FCFS receiver leaves; the broadcast consumer lives on.
    // The obligations must be re-evaluated here, or batch 1 pins 20
    // blocks for the rest of the conversation's life.
    m.close_receive(flood_rf).expect("close fcfs");

    // Batch 2 must fit in the pool: bounded, not bled dry by batch 1.
    for i in 0..8u8 {
        m.message_send(flood_tx, &[i]).expect("send batch 2");
    }
    let n = m
        .message_receive_timeout(ctl, &mut buf, Duration::from_secs(30))
        .expect("batch2 ack");
    assert_eq!(&buf[..n], b"batch2");
    finish(child, "broadcast-only consumer");

    // The child closed its broadcast connection before acking: only the
    // sender connection remains, the queue must be fully drained, and
    // every block back on the free list.
    assert_eq!(
        m.free_blocks(),
        total,
        "blocks still pinned by departed-FCFS obligations"
    );
    m.close_send(flood_tx).expect("close flood send");
    m.close_receive(ctl).expect("close ctl");
    assert_eq!(m.live_lnvcs(), 0);
    assert_eq!(m.free_blocks(), total);
    // Conservation in telemetry terms: nothing queued means no corpses,
    // and the in-region counters saw all 28 flood messages plus acks.
    assert_eq!(m.reclaimable(), Reclaimable::default());
    let t = m.telemetry_snapshot();
    assert!(t.sends >= 28, "sends {} < flood volume", t.sends);
    assert_eq!(t.lnvcs_created, t.lnvcs_deleted);
}

/// Child role for [`mpfstat_post_mortem_reads_a_sigkilled_writer`]: open a
/// conversation, send a recognizable stream, report in, then park
/// forever — the parent SIGKILLs this process mid-session, so its last
/// acts must remain readable from the region afterwards.
#[test]
#[ignore = "helper: only meaningful when spawned by a parent test"]
fn helper_doomed_sender() {
    let Ok(region) = std::env::var(REGION_ENV) else {
        return;
    };
    let m = IpcMpf::attach(&region).expect("attach");
    let tx = m.open_send("blackbox").expect("open_send blackbox");
    let ctl = m.open_send("ctl").expect("open ctl");
    for i in 0..5u8 {
        m.message_send(tx, &[i; 24]).expect("send stream");
    }
    m.message_send(ctl, b"sent").expect("report in");
    std::thread::sleep(Duration::from_secs(60));
}

/// The flight recorder's reason to exist: a writer is SIGKILLed
/// mid-session and `mpfstat --json` — attaching read-only, after the
/// fact — still reports its last flight-ring events, the non-zero
/// counters it contributed, and the poisoned conversation it left
/// behind.
#[test]
fn mpfstat_post_mortem_reads_a_sigkilled_writer() {
    let region = unique_region("postmortem");
    let m = create_region(&region);
    let rx = m.open_receive("blackbox", Protocol::Fcfs).unwrap();
    let ctl = m.open_receive("ctl", Protocol::Fcfs).unwrap();

    let mut victim = spawn_helper("helper_doomed_sender", &region);
    let mut buf = [0u8; 64];
    let n = m
        .message_receive_timeout(ctl, &mut buf, Duration::from_secs(30))
        .expect("victim reports in");
    assert_eq!(&buf[..n], b"sent");
    // Drain two of the five so receive-side counters are non-zero too.
    for _ in 0..2 {
        m.message_receive_timeout(rx, &mut buf, Duration::from_secs(30))
            .expect("drain stream");
    }

    let victim_os_pid = victim.id();
    victim.kill().expect("SIGKILL victim");
    victim.wait().expect("reap victim");
    // One survivor sweep converts the corpse's slot to DEAD and poisons
    // the conversations it touched — exactly what a stuck operator's
    // first `mpfstat` glance should show.
    while m.sweep_dead_peers() == 0 {
        std::thread::sleep(Duration::from_millis(10));
    }

    // The library-level post-mortem view first.
    let insp = RegionInspector::attach(&region).expect("inspector attach");
    let dead: Vec<_> = insp
        .processes()
        .into_iter()
        .filter(|p| p.state == "dead")
        .collect();
    assert_eq!(dead.len(), 1, "exactly one swept corpse");
    assert_eq!(dead[0].os_pid, victim_os_pid);
    let events = insp.flight_events(dead[0].pid);
    assert!(
        events
            .iter()
            .filter(|e| e.kind == mpf_shm::telemetry::EV_SEND)
            .count()
            >= 5,
        "victim's sends must survive in its flight ring: {events:?}"
    );
    assert_eq!(insp.ring_writer(dead[0].pid), victim_os_pid);
    assert!(insp.lnvcs().iter().any(|l| l.poisoned));
    let t = insp.telemetry_snapshot();
    assert!(t.sends >= 6 && t.receives >= 2 && t.peers_died == 1);

    // Then the full binary, exactly as an operator would run it.
    let out = Command::new(env!("CARGO_BIN_EXE_mpfstat"))
        .args([region.as_str(), "--json"])
        .output()
        .expect("run mpfstat");
    assert!(out.status.success(), "mpfstat failed: {out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8 json");
    assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
    assert!(json.contains("\"state\":\"dead\""), "dead slot in {json}");
    assert!(json.contains("\"poisoned\":true"), "poison in {json}");
    assert!(json.contains("\"kind\":\"send\""), "ring events in {json}");
    assert!(
        json.contains(&format!("\"os_pid\":{victim_os_pid}")),
        "victim os pid in {json}"
    );
    assert!(json.contains("\"peers_died\":1"), "sweep count in {json}");

    // The trace subview reads the corpse's causal ring the same way.
    let out = Command::new(env!("CARGO_BIN_EXE_mpfstat"))
        .args([region.as_str(), "--trace", "--json"])
        .output()
        .expect("run mpfstat --trace");
    assert!(out.status.success(), "mpfstat --trace failed: {out:?}");
    let json = String::from_utf8(out.stdout).expect("utf8 json");
    assert!(
        json.contains("\"trace_enabled\":true"),
        "tracing on in {json}"
    );
    assert!(
        json.contains("\"kind\":\"send\""),
        "victim's trace records in {json}"
    );
    assert_eq!(json.matches('{').count(), json.matches('}').count());
}
