//! Batched-submission (aio) tests for the multi-process backend, run
//! single-OS-process via `attach_view` (see `ipc_loopback.rs` for why
//! that exercises the real multi-process code paths).

use std::sync::atomic::{AtomicU64, Ordering};

use mpf::{MpfConfig, MpfError, Protocol};
use mpf_ipc::IpcMpf;

fn unique_name(tag: &str) -> String {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    format!(
        "aio-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    )
}

fn small_cfg() -> MpfConfig {
    MpfConfig::new(8, 4)
        .with_block_payload(64)
        .with_total_blocks(64)
        .with_max_messages(32)
        .with_max_connections(16)
}

#[test]
fn batched_send_recv_roundtrip_across_views() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    let a = IpcMpf::create(&unique_name("loop"), &small_cfg()).unwrap();
    let b = a.attach_view().unwrap();

    let tx = a.open_send("bulk").unwrap();
    let rx = b.open_receive("bulk", Protocol::Fcfs).unwrap();

    let payloads: Vec<Vec<u8>> = (0..8u8).map(|i| vec![i; 16]).collect();
    let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
    let completions = a.send_batch(tx, &refs).unwrap();
    assert_eq!(completions.len(), 8);
    for (i, c) in completions.iter().enumerate() {
        assert!(c.ok(), "completion {i} failed with status {}", c.status);
        assert_eq!(c.user_data, i as u64, "tokens come back in order");
        assert_eq!(c.len, 16);
    }

    let st = a.aio_stats();
    assert_eq!(st.sq_doorbells, 1, "one doorbell for the whole batch");
    assert_eq!(st.submitted, 8);
    assert_eq!(st.drained, 8);
    assert_eq!(st.completed, 8);
    assert_eq!(st.reaped, 8);
    assert_eq!(st.sq_depth, 0);
    assert_eq!(st.cq_depth, 0);

    let got = b.recv_batch(rx, 64).unwrap();
    assert_eq!(got.len(), 8, "batched receive drains the backlog");
    for (i, msg) in got.iter().enumerate() {
        assert_eq!(msg.as_slice(), &payloads[i][..], "FIFO order preserved");
    }

    // Empty batches are no-ops with no doorbell.
    assert!(a.send_batch(tx, &[]).unwrap().is_empty());
    assert!(b.recv_batch(rx, 0).unwrap().is_empty());
    assert_eq!(a.aio_stats().sq_doorbells, 1);
}

#[test]
fn dead_sender_mid_batch_reclaims_staged_messages_and_poisons() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    let main = IpcMpf::create(&unique_name("dead"), &small_cfg()).unwrap();
    let sender = main.attach_view().unwrap();

    let rx = main.open_receive("doomed", Protocol::Fcfs).unwrap();
    let tx = sender.open_send("doomed").unwrap();

    let free_before = main.free_blocks();
    // Stage a batch but "die" before draining it: the messages exist only
    // in the corpse's submission ring.
    let payloads: Vec<&[u8]> = vec![b"one", b"two", b"three", b"four"];
    assert_eq!(sender.submit_sends(tx, &payloads).unwrap(), 4);
    assert_eq!(sender.aio_stats().sq_depth, 4);
    assert!(main.free_blocks() < free_before, "staged blocks are held");

    sender.debug_abandon_slot();
    assert_eq!(main.sweep_dead_peers(), 1, "sweep finds the corpse");

    assert_eq!(
        main.free_blocks(),
        free_before,
        "the corpse's staged ring entries are reclaimed"
    );
    let mut buf = [0u8; 64];
    match main.message_receive_timeout(rx, &mut buf, std::time::Duration::from_secs(2)) {
        Err(MpfError::PeerDied { pid }) => assert_eq!(pid, sender.pid()),
        other => panic!("expected PeerDied, got {other:?}"),
    }
    drop(sender);
}

#[test]
fn clean_detach_returns_staged_batch_to_the_pools() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    let main = IpcMpf::create(&unique_name("detach"), &small_cfg()).unwrap();
    let free_before = main.free_blocks();
    {
        let sender = main.attach_view().unwrap();
        let tx = sender.open_send("short-lived").unwrap();
        assert_eq!(
            sender.submit_sends(tx, &[b"a".as_slice(), b"b"]).unwrap(),
            2
        );
        assert!(main.free_blocks() < free_before);
        sender.close_send(tx).unwrap();
        // Dropped with two staged, undrained submissions.
    }
    assert_eq!(
        main.free_blocks(),
        free_before,
        "clean detach frees staged submissions"
    );
}

#[test]
fn latency_sampling_follows_creator_rate() {
    if !mpf_shm::sys::HAVE_SYSCALLS {
        return;
    }
    let cfg = small_cfg().latency_sample_rate(4);
    let m = IpcMpf::create(&unique_name("sample"), &cfg).unwrap();
    let tx = m.open_send("sampled").unwrap();
    let rx = m.open_receive("sampled", Protocol::Fcfs).unwrap();
    for i in 0..8u8 {
        m.message_send(tx, &[i; 8]).unwrap();
    }
    let mut buf = [0u8; 16];
    for _ in 0..8 {
        m.message_receive(rx, &mut buf).unwrap();
    }
    let t = m.telemetry_snapshot();
    assert_eq!(t.receives, 8, "every message is still counted");
    assert_eq!(
        t.latency_hist.count, 2,
        "1-in-4 sampling stamps exactly two of eight sends"
    );
}
