//! Deadline-bounded blocking on the ipc backend: `recv_deadline`,
//! `send_deadline`, `wait_any_deadline` and the batch variants must
//! surface `MpfError::TimedOut` at expiry with nothing consumed or
//! enqueued, while traffic racing the deadline is still delivered.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpf::{MpfConfig, MpfError, Protocol};
use mpf_ipc::IpcMpf;

fn region(name: &str) -> IpcMpf {
    let cfg = MpfConfig::new(8, 4)
        .with_block_payload(64)
        .with_total_blocks(8)
        .with_max_messages(8)
        .with_max_connections(16);
    IpcMpf::create(name, &cfg).expect("create region")
}

#[test]
fn recv_deadline_times_out_with_typed_error() {
    let m = region("dl-recv");
    let _tx = m.open_send("quiet").unwrap();
    let rx = m.open_receive("quiet", Protocol::Fcfs).unwrap();
    let mut buf = [0u8; 8];
    let start = Instant::now();
    let err = m
        .recv_deadline(rx, &mut buf, Some(start + Duration::from_millis(50)))
        .unwrap_err();
    assert_eq!(
        err,
        MpfError::TimedOut,
        "deadline API reports TimedOut, not WouldBlock"
    );
    assert!(start.elapsed() >= Duration::from_millis(50));
}

#[test]
fn recv_deadline_delivers_a_queued_message_despite_expiry() {
    let m = region("dl-race");
    let tx = m.open_send("race").unwrap();
    let rx = m.open_receive("race", Protocol::Fcfs).unwrap();
    m.message_send(tx, b"beat-it").unwrap();
    let mut buf = [0u8; 16];
    // Deadline already past, but the delivery attempt runs first.
    let n = m.recv_deadline(rx, &mut buf, Some(Instant::now())).unwrap();
    assert_eq!(&buf[..n], b"beat-it");
}

#[test]
fn recv_deadline_wakes_on_send_from_another_view() {
    let a = region("dl-wake");
    let b = a.attach_view().expect("second view");
    let tx = b.open_send("wake").unwrap();
    let rx = a.open_receive("wake", Protocol::Fcfs).unwrap();
    let sender = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        b.message_send(tx, b"late but real").unwrap();
        b.close_send(tx).unwrap();
    });
    let mut buf = [0u8; 32];
    let n = a
        .recv_deadline(rx, &mut buf, Some(Instant::now() + Duration::from_secs(30)))
        .unwrap();
    assert_eq!(&buf[..n], b"late but real");
    sender.join().unwrap();
}

#[test]
fn send_deadline_times_out_under_exhaustion_with_nothing_enqueued() {
    let m = region("dl-send");
    let tx = m.open_send("full").unwrap();
    let rx = m.open_receive("full", Protocol::Fcfs).unwrap();
    // 8 one-block messages exhaust the 8-block pool.
    for i in 0..8 {
        m.message_send(tx, &[i; 64]).unwrap();
    }
    let start = Instant::now();
    let err = m
        .send_deadline(tx, &[9; 64], Some(start + Duration::from_millis(60)))
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);
    assert!(start.elapsed() >= Duration::from_millis(60));

    // Only the eight pre-expiry messages exist; the timed-out send
    // staged nothing.
    let mut buf = [0u8; 64];
    for i in 0..8 {
        let n = m.message_receive(rx, &mut buf).unwrap();
        assert_eq!(&buf[..n], &[i; 64][..]);
    }
    assert!(!m.check_receive(rx).unwrap());

    // With the pool drained, the same send completes and every block
    // returns to the pool afterwards.
    let free_before = m.free_blocks();
    m.send_deadline(tx, &[9; 64], Some(Instant::now() + Duration::from_secs(30)))
        .unwrap();
    let n = m.message_receive(rx, &mut buf).unwrap();
    assert_eq!(&buf[..n], &[9; 64][..]);
    assert_eq!(
        m.free_blocks(),
        free_before,
        "blocks conserved through the retry"
    );
}

#[test]
fn wait_any_deadline_times_out_then_reports_the_ready_member() {
    let m = region("dl-any");
    let t1 = m.open_send("a").unwrap();
    let r1 = m.open_receive("a", Protocol::Fcfs).unwrap();
    let _t2 = m.open_send("b").unwrap();
    let r2 = m.open_receive("b", Protocol::Fcfs).unwrap();

    assert_eq!(
        m.wait_any_deadline(&[], Some(Instant::now())).unwrap_err(),
        MpfError::EmptyWaitSet
    );
    let err = m
        .wait_any_deadline(&[r1, r2], Some(Instant::now() + Duration::from_millis(50)))
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);

    m.message_send(t1, b"here").unwrap();
    let ready = m
        .wait_any_deadline(&[r1, r2], Some(Instant::now() + Duration::from_secs(30)))
        .unwrap();
    assert_eq!(ready, r1);
}

#[test]
fn wait_any_deadline_wakes_on_cross_view_send() {
    let a = region("dl-any-wake");
    let b = a.attach_view().unwrap();
    let _t1 = a.open_send("m1").unwrap();
    let r1 = a.open_receive("m1", Protocol::Fcfs).unwrap();
    let t2 = b.open_send("m2").unwrap();
    let r2 = a.open_receive("m2", Protocol::Fcfs).unwrap();
    let b = Arc::new(b);
    let sender = {
        let b = Arc::clone(&b);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(40));
            b.message_send(t2, b"pick me").unwrap();
        })
    };
    let ready = a
        .wait_any_deadline(&[r1, r2], Some(Instant::now() + Duration::from_secs(30)))
        .unwrap();
    assert_eq!(ready, r2);
    sender.join().unwrap();
}

#[test]
fn recv_batch_deadline_times_out_then_drains() {
    let m = region("dl-rbatch");
    let tx = m.open_send("batch").unwrap();
    let rx = m.open_receive("batch", Protocol::Fcfs).unwrap();
    let err = m
        .recv_batch_deadline(rx, 8, Some(Instant::now() + Duration::from_millis(50)))
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);

    for i in 0..3u8 {
        m.message_send(tx, &[i; 4]).unwrap();
    }
    let got = m
        .recv_batch_deadline(rx, 8, Some(Instant::now() + Duration::from_secs(30)))
        .unwrap();
    assert_eq!(got, vec![vec![0; 4], vec![1; 4], vec![2; 4]]);
}

#[test]
fn send_batch_deadline_times_out_when_nothing_submits() {
    let m = region("dl-sbatch");
    let tx = m.open_send("bfull").unwrap();
    let _rx = m.open_receive("bfull", Protocol::Fcfs).unwrap();
    for i in 0..8 {
        m.message_send(tx, &[i; 64]).unwrap();
    }
    let err = m
        .send_batch_deadline(
            tx,
            &[&[7; 64], &[8; 64]],
            Some(Instant::now() + Duration::from_millis(60)),
        )
        .unwrap_err();
    assert_eq!(err, MpfError::TimedOut);
}
