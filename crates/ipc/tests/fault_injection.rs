//! Integration tests for the deterministic fault plane driving the real
//! ipc facility: injected faults surface as the same typed errors the
//! genuine failure would, are recorded as `TR_FAULT` trace records, and
//! replay identically from the same seed.
//!
//! The plane is process-global, so every test here serializes on one
//! mutex; this file is its own test binary to keep the plane's state
//! away from the other ipc tests.

use std::sync::Mutex;

use mpf::{MpfConfig, MpfError, Protocol};
use mpf_ipc::IpcMpf;
use mpf_shm::faultplane::{self, FaultConfig, FaultSite};
use mpf_shm::tracering::TR_FAULT;

static PLANE: Mutex<()> = Mutex::new(());

fn region(name: &str) -> IpcMpf {
    let cfg = MpfConfig::new(4, 4)
        .with_block_payload(64)
        .with_total_blocks(32)
        .with_max_messages(16)
        .with_tracing(256);
    IpcMpf::create(name, &cfg).expect("create region")
}

#[test]
fn injected_peer_death_surfaces_typed_error_and_traces() {
    let _t = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    let m = region("fault-peer");
    let tx = m.open_send("doomed").unwrap();
    let _rx = m.open_receive("doomed", Protocol::Fcfs).unwrap();

    let free_before = m.free_blocks();
    {
        let _g = faultplane::install(FaultConfig::new(11).with_peer_died(1.0));
        let err = m.message_send(tx, b"never arrives").unwrap_err();
        assert!(matches!(err, MpfError::PeerDied { .. }), "{err:?}");
    }
    // The injection allocated nothing and mutated no shared state: the
    // plane lies to one caller, not to the region.
    assert_eq!(m.free_blocks(), free_before);
    m.message_send(tx, b"works again").unwrap();

    // The injection left an audit record: TR_FAULT with the site code
    // and the surfaced status (arg2 != 0 = not silently swallowed).
    let faults: Vec<_> = m
        .trace_events(m.pid())
        .into_iter()
        .filter(|e| e.kind == TR_FAULT)
        .collect();
    assert_eq!(faults.len(), 1, "one injection, one TR_FAULT record");
    assert_eq!(faults[0].arg, FaultSite::PeerDied.code());
    assert_ne!(faults[0].arg2, 0, "the typed error's status is recorded");
}

#[test]
fn injected_pool_exhaustion_reports_without_allocating() {
    let _t = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    let m = region("fault-pool");
    let tx = m.open_send("starved").unwrap();
    let rx = m.open_receive("starved", Protocol::Fcfs).unwrap();

    let free_before = m.free_blocks();
    {
        let _g = faultplane::install(FaultConfig::new(3).with_pool_exhaust(1.0));
        let err = m.message_send(tx, b"no room").unwrap_err();
        assert_eq!(err, MpfError::MessagesExhausted);
        assert!(faultplane::stats().pool_exhausts >= 1);
    }
    assert_eq!(m.free_blocks(), free_before, "nothing was staged");
    m.message_send(tx, b"fine now").unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(m.message_receive(rx, &mut buf).unwrap(), 8);
}

#[test]
fn seeded_injection_replays_identically_through_the_facility() {
    let _t = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    // Same seed, same op sequence on a fresh region → the same sends
    // fail at the same positions.  This is what makes a fault-plane CI
    // failure reproducible from its logged seed.
    let run = |tag: &str, seed: u64| {
        let m = region(tag);
        let tx = m.open_send("coin").unwrap();
        let rx = m.open_receive("coin", Protocol::Fcfs).unwrap();
        // No draining while the plane is armed: the receive path has its
        // own PeerDied injection site, and 16 sends fit the message pool.
        let pattern: Vec<bool> = {
            let _g = faultplane::install(FaultConfig::new(seed).with_peer_died(0.5));
            (0..16)
                .map(|_| m.message_send(tx, b"flip").is_ok())
                .collect()
        };
        let mut buf = [0u8; 8];
        for &sent in pattern.iter().filter(|&&s| s) {
            assert!(sent);
            m.message_receive(rx, &mut buf).unwrap();
        }
        pattern
    };
    let a = run("fault-replay-a", 77);
    let b = run("fault-replay-b", 77);
    let c = run("fault-replay-c", 78);
    assert_eq!(a, b, "same seed, same failure pattern");
    assert_ne!(a, c, "different seed, different pattern");
    assert!(a.iter().any(|&ok| ok) && a.iter().any(|&ok| !ok));
}

#[test]
fn env_spec_installs_the_plane() {
    let _t = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    // `mpf-soak`'s children opt in exactly this way: MPF_FAULTS in the
    // environment, install_from_env() at startup.
    std::env::set_var("MPF_FAULTS", "seed=5,peer=1.0");
    let g = faultplane::install_from_env().expect("spec accepted");
    std::env::remove_var("MPF_FAULTS");

    let m = region("fault-env");
    let tx = m.open_send("envy").unwrap();
    let err = m.message_send(tx, b"x").unwrap_err();
    assert!(matches!(err, MpfError::PeerDied { .. }), "{err:?}");
    assert!(faultplane::stats().peer_died >= 1);
    drop(g);
    assert!(!faultplane::enabled());
    m.message_send(tx, b"x").unwrap();
}

#[test]
fn frozen_faulted_region_passes_offline_conformance() {
    let _t = PLANE.lock().unwrap_or_else(|e| e.into_inner());
    // Leaves the region file behind on purpose (a process that vanished
    // without detaching): the CI faults job runs
    // `mpf-trace fault-frozen --check` against it afterwards, gating
    // that the injected fault shows up as an audited TR_FAULT record —
    // typed error surfaced, no conformance violations.
    let m = region("fault-frozen");
    let tx = m.open_send("audited").unwrap();
    let rx = m.open_receive("audited", Protocol::Fcfs).unwrap();

    // One complete causal chain, so the offline delivery rules have a
    // clean ledger...
    m.message_send(tx, b"delivered").unwrap();
    let mut buf = [0u8; 16];
    assert_eq!(m.message_receive(rx, &mut buf).unwrap(), 9);

    // ...plus one injected error-class fault that surfaced typed.
    {
        let _g = faultplane::install(FaultConfig::new(99).with_peer_died(1.0));
        let err = m.message_send(tx, b"never sent").unwrap_err();
        assert!(matches!(err, MpfError::PeerDied { .. }), "{err:?}");
    }

    // Freeze: skip Drop entirely, exactly like a SIGKILL would.
    std::mem::forget(m);
}
