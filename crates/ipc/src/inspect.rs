//! Read-only region inspection — the library behind `mpfstat`.
//!
//! [`RegionInspector`] maps a named region with `PROT_READ` only
//! ([`ShmRegion::attach_readonly`]): it claims no process slot, takes no
//! lock, bumps no heartbeat, and cannot write a byte, so it observes a
//! **live** session without perturbing it and a **crashed** one without
//! the usual "attach re-initializes something" hazard.  Everything it
//! reports is assembled from lock-free reads:
//!
//! * fixed-size tables (process slots, LNVC descriptors, telemetry,
//!   flight rings) are scanned by index — no links followed;
//! * queue walks are bounded by the message-pool capacity, so a cycle
//!   torn by a mid-update crash terminates instead of hanging;
//! * flight rings use their seqlock protocol ([`FlightRing::snapshot`]),
//!   dropping records a live writer is mid-overwrite on.
//!
//! Numbers read while the session is running are each individually
//! atomic but mutually unsynchronized — a send may be counted whose
//! queue link is not yet visible.  For a crashed (quiescent) region the
//! view is exact.

use std::sync::atomic::Ordering;

use mpf::aio::AioStats;
use mpf::layout::{RegionLayout, LAYOUT_VERSION, REGION_MAGIC};
use mpf::{MpfConfig, MpfError};
use mpf_shm::ring::AioRing;
use mpf_shm::telemetry::{FacilityTelemetry, HISTOGRAM_BUCKETS};
use mpf_shm::telemetry::{FlightEvent, FlightRing, LnvcTelSnapshot, LnvcTelemetry, TelSnapshot};
use mpf_shm::tracering::{TraceEvent, TraceRing, TRACE_RING_SLOTS};
use mpf_shm::ShmRegion;

use crate::facility::{offsets_for, AttachError, Offsets};
use crate::shmem::{
    msg_flags, region_state, slot_state, LnvcDesc, MsgDesc, ProcessSlot, RegionHeader,
    RegistryEntry, NIL,
};

/// One process slot, decoded.
#[derive(Debug, Clone)]
pub struct ProcessInfo {
    /// Slot index = MPF pid.
    pub pid: u32,
    /// `"free"`, `"attached"`, or `"dead"`.
    pub state: &'static str,
    /// OS pid recorded at attach (0 after a clean detach).
    pub os_pid: u32,
    /// Whether that OS process exists *right now* (an attached slot with
    /// `alive == false` is a corpse no survivor has swept yet).
    pub alive: bool,
    /// Activity counter (bumped on every primitive call).
    pub heartbeat: u64,
    /// Slot reuse count.
    pub generation: u32,
}

/// One active conversation, decoded.
#[derive(Debug, Clone)]
pub struct LnvcInfo {
    /// Descriptor index.
    pub index: u32,
    /// Registered name (lossy UTF-8, NUL padding stripped).
    pub name: String,
    /// Descriptor reuse count (high half of live handles).
    pub generation: u32,
    /// Messages currently queued.
    pub queued: u32,
    /// Of those, fully delivered but not yet freed (corpses).
    pub reclaimable: u32,
    /// Connected senders.
    pub n_senders: u32,
    /// Connected FCFS receivers.
    pub n_fcfs: u32,
    /// Connected BROADCAST receivers.
    pub n_bcast: u32,
    /// Next send sequence number (= messages ever sent here).
    pub next_seq: u32,
    /// Whether a peer died mid-conversation.
    pub poisoned: bool,
    /// The MPF pid blamed for the poison (meaningful when `poisoned`).
    pub dead_pid: u32,
    /// Per-conversation telemetry counters.
    pub tel: LnvcTelSnapshot,
}

/// One process's aio submission/completion ring pair, decoded.
#[derive(Debug, Clone)]
pub struct AioRingInfo {
    /// Slot index = MPF pid that owns the ring pair.
    pub pid: u32,
    /// Depths, doorbell counts, and lifetime submit/drain/complete/reap
    /// counters.
    pub stats: AioStats,
}

/// Occupancy of one process's causal trace ring.
#[derive(Debug, Clone, Copy)]
pub struct TraceRingInfo {
    /// Slot index = MPF pid that owns the ring.
    pub pid: u32,
    /// OS pid that owns (or owned) the ring.
    pub writer_pid: u32,
    /// Records ever written (the ring keeps the most recent
    /// [`TRACE_RING_SLOTS`]).
    pub recorded: u64,
    /// Of those, records already overwritten and lost.
    pub overwritten: u64,
    /// Causal chains never recorded because sampling skipped them.
    pub sampled_out: u64,
}

/// A read-only attachment to a named region (live or post-mortem).
#[derive(Debug)]
pub struct RegionInspector {
    region: ShmRegion,
    off: Offsets,
    cfg: MpfConfig,
    name: String,
}

impl RegionInspector {
    /// Maps the named region read-only and validates its header.  Unlike
    /// [`crate::IpcMpf::attach`] there is no barrier wait: a region whose
    /// creator died mid-carve is reported as an error immediately.
    pub fn attach(name: &str) -> Result<Self, AttachError> {
        let region = ShmRegion::attach_readonly(name)?;
        if region.len() < std::mem::size_of::<RegionHeader>() {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found: 0,
            }
            .into());
        }
        let header: &RegionHeader = unsafe { region.at(0) };
        if header.state.load(Ordering::Acquire) != region_state::READY
            || header.magic.load(Ordering::Acquire) != REGION_MAGIC
        {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found: 0,
            }
            .into());
        }
        let found = header.layout_version.load(Ordering::Acquire);
        if found != LAYOUT_VERSION {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found,
            }
            .into());
        }
        // The echo is range-checked before any layout math: a corrupt
        // region can present a READY header full of garbage, and the
        // inspector's promise is a clean error, never a panic.
        let cfg = header.cfg.decode().ok_or(MpfError::LayoutMismatch {
            expected: LAYOUT_VERSION,
            found,
        })?;
        // Same defense as `IpcMpf::attach`: the stored total must match the
        // total THIS binary computes for the echoed config, else reader and
        // writer disagree on the segment map and every decoded offset lies.
        let expected_bytes = header.total_bytes.load(Ordering::Acquire) as usize;
        let computed_bytes = RegionLayout::for_ipc(&cfg).total_bytes();
        if region.len() < expected_bytes || computed_bytes != expected_bytes {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found,
            }
            .into());
        }
        Ok(Self {
            region,
            off: offsets_for(&cfg),
            cfg,
            name: name.to_string(),
        })
    }

    // -- raw accessors (all reads) -------------------------------------

    fn header(&self) -> &RegionHeader {
        unsafe { self.region.at(self.off.header) }
    }

    fn slot(&self, i: u32) -> &ProcessSlot {
        unsafe {
            self.region
                .at(self.off.slots + i as usize * std::mem::size_of::<ProcessSlot>())
        }
    }

    fn lnvc(&self, i: u32) -> &LnvcDesc {
        unsafe {
            self.region
                .at(self.off.lnvcs + i as usize * std::mem::size_of::<LnvcDesc>())
        }
    }

    fn reg_entry(&self, i: u32) -> &RegistryEntry {
        unsafe {
            self.region
                .at(self.off.registry + i as usize * std::mem::size_of::<RegistryEntry>())
        }
    }

    fn msg(&self, i: u32) -> &MsgDesc {
        unsafe {
            self.region
                .at(self.off.msgs + i as usize * std::mem::size_of::<MsgDesc>())
        }
    }

    /// Process `slot`'s facility-telemetry shard.
    fn fac_tel(&self, slot: u32) -> &FacilityTelemetry {
        unsafe {
            self.region
                .at(self.off.fac_tel + slot as usize * std::mem::size_of::<FacilityTelemetry>())
        }
    }

    fn lnvc_tel(&self, i: u32) -> &LnvcTelemetry {
        unsafe {
            self.region
                .at(self.off.lnvc_tel + i as usize * std::mem::size_of::<LnvcTelemetry>())
        }
    }

    fn ring(&self, p: u32) -> &FlightRing {
        unsafe {
            self.region
                .at(self.off.rings + p as usize * std::mem::size_of::<FlightRing>())
        }
    }

    fn trace_ring(&self, p: u32) -> &TraceRing {
        unsafe {
            self.region
                .at(self.off.trace_rings + p as usize * std::mem::size_of::<TraceRing>())
        }
    }

    fn aio_sq(&self, p: u32) -> &AioRing {
        unsafe {
            self.region
                .at(self.off.aio_sq + p as usize * std::mem::size_of::<AioRing>())
        }
    }

    fn aio_cq(&self, p: u32) -> &AioRing {
        unsafe {
            self.region
                .at(self.off.aio_cq + p as usize * std::mem::size_of::<AioRing>())
        }
    }

    // -- decoded views -------------------------------------------------

    /// The region name this inspector attached to.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The config the creator carved with (rebuilt from the header echo).
    pub fn config(&self) -> &MpfConfig {
        &self.cfg
    }

    /// Whether participants are recording telemetry.  The counters and
    /// rings exist (and read as zero) even when they are not.
    pub fn telemetry_enabled(&self) -> bool {
        self.cfg.telemetry
    }

    /// Total region bytes.
    pub fn region_bytes(&self) -> usize {
        self.region.len()
    }

    /// Global send stamp — total messages ever sent through the region.
    pub fn next_stamp(&self) -> u64 {
        self.header().next_stamp.load(Ordering::Acquire)
    }

    /// Dead-peer sweep epoch (bumped each time corpses were found).
    pub fn sweep_epoch(&self) -> u64 {
        u64::from(self.header().sweep_epoch.load(Ordering::Acquire))
    }

    /// Every process slot, decoded, with an up-to-date liveness probe.
    pub fn processes(&self) -> Vec<ProcessInfo> {
        (0..self.cfg.max_processes)
            .map(|i| {
                let s = self.slot(i);
                let state = s.state.load(Ordering::Acquire);
                let os_pid = s.os_pid.load(Ordering::Acquire);
                ProcessInfo {
                    pid: i,
                    state: match state {
                        slot_state::ATTACHED => "attached",
                        slot_state::DEAD => "dead",
                        _ => "free",
                    },
                    os_pid,
                    alive: state == slot_state::ATTACHED
                        && os_pid != 0
                        && mpf_shm::futex::process_alive(os_pid),
                    heartbeat: s.heartbeat.load(Ordering::Acquire),
                    generation: s.generation.load(Ordering::Acquire),
                }
            })
            .collect()
    }

    /// Every active conversation, decoded.  Queue walks are bounded by
    /// the message-pool capacity so a torn region cannot hang us.
    pub fn lnvcs(&self) -> Vec<LnvcInfo> {
        let mut out = Vec::new();
        for idx in 0..self.cfg.max_lnvcs {
            let d = self.lnvc(idx);
            if d.active.load(Ordering::Acquire) != 1 {
                continue;
            }
            let reg_idx = d.registry_idx.load(Ordering::Acquire);
            let name = if reg_idx < self.cfg.max_lnvcs {
                let raw = self.reg_entry(reg_idx).get_name();
                let end = raw.iter().position(|&b| b == 0).unwrap_or(raw.len());
                String::from_utf8_lossy(&raw[..end]).into_owned()
            } else {
                String::new()
            };
            let (queued, reclaimable) = self.queue_census(d);
            out.push(LnvcInfo {
                index: idx,
                name,
                generation: d.generation.load(Ordering::Acquire),
                queued,
                reclaimable,
                n_senders: d.n_senders.load(Ordering::Acquire),
                n_fcfs: d.n_fcfs.load(Ordering::Acquire),
                n_bcast: d.n_bcast.load(Ordering::Acquire),
                next_seq: d.next_seq.load(Ordering::Acquire),
                poisoned: d.poisoned.load(Ordering::Acquire) != 0,
                dead_pid: d.dead_pid.load(Ordering::Acquire),
                tel: self.lnvc_tel(idx).snapshot(),
            });
        }
        out
    }

    /// Bounded walk of one queue: (messages linked, of which corpses).
    fn queue_census(&self, d: &LnvcDesc) -> (u32, u32) {
        let mut queued = 0;
        let mut reclaimable = 0;
        let mut cur = d.q_head.load(Ordering::Acquire);
        while cur != NIL && cur < self.cfg.max_messages && queued < self.cfg.max_messages {
            let m = self.msg(cur);
            queued += 1;
            let flags = m.flags.load(Ordering::Acquire);
            let fcfs_done =
                flags & msg_flags::NEEDS_FCFS == 0 || flags & msg_flags::FCFS_TAKEN != 0;
            if fcfs_done && m.bcast_pending.load(Ordering::Acquire) == 0 {
                reclaimable += 1;
            }
            cur = m.next.load(Ordering::Acquire);
        }
        (queued, reclaimable)
    }

    /// Facility-wide counter/histogram snapshot (sum of every process
    /// slot's shard).
    pub fn telemetry_snapshot(&self) -> TelSnapshot {
        let mut sum = TelSnapshot::default();
        for p in 0..self.cfg.max_processes {
            sum.absorb(&self.fac_tel(p).snapshot());
        }
        sum
    }

    /// Every process slot's aio submission/completion ring counters.
    /// Depths read on a live region are instantaneous (head and tail are
    /// separately atomic); lifetime counters only grow.
    pub fn aio_rings(&self) -> Vec<AioRingInfo> {
        (0..self.cfg.max_processes)
            .map(|p| AioRingInfo {
                pid: p,
                stats: AioStats::from_rings(self.aio_sq(p), self.aio_cq(p)),
            })
            .collect()
    }

    /// The OS pid that owns (or owned) process `pid`'s flight ring.
    pub fn ring_writer(&self, pid: u32) -> u32 {
        if pid >= self.cfg.max_processes {
            return 0;
        }
        self.ring(pid).writer_pid()
    }

    /// Tail of process `pid`'s flight ring, oldest first — the last
    /// things that process did, even if it is now a corpse.
    pub fn flight_events(&self, pid: u32) -> Vec<FlightEvent> {
        if pid >= self.cfg.max_processes {
            return Vec::new();
        }
        self.ring(pid).snapshot()
    }

    /// Whether participants are recording causal traces (the creator's
    /// sampling knob, echoed in the header; 0 = off).
    pub fn trace_enabled(&self) -> bool {
        self.cfg.trace_sample_every != 0
    }

    /// Tail of process `pid`'s causal trace ring, oldest first — the raw
    /// material `mpf-trace` reconstructs chains from, readable for live
    /// and dead processes alike.
    pub fn trace_events(&self, pid: u32) -> Vec<TraceEvent> {
        if pid >= self.cfg.max_processes {
            return Vec::new();
        }
        self.trace_ring(pid).snapshot()
    }

    /// Every process slot's trace-ring occupancy.
    pub fn trace_rings(&self) -> Vec<TraceRingInfo> {
        (0..self.cfg.max_processes)
            .map(|p| {
                let r = self.trace_ring(p);
                let recorded = r.head();
                TraceRingInfo {
                    pid: p,
                    writer_pid: r.writer_pid(),
                    recorded,
                    overwritten: recorded.saturating_sub(TRACE_RING_SLOTS as u64),
                    sampled_out: r.skipped(),
                }
            })
            .collect()
    }
}

/// Re-exported so binary and tests can size bucket tables without
/// importing `mpf_shm` directly.
pub const BUCKETS: usize = HISTOGRAM_BUCKETS;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IpcMpf;
    use mpf::Protocol;
    use std::sync::atomic::AtomicU64;

    fn unique_name(tag: &str) -> String {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        format!(
            "inspect-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        )
    }

    fn small_cfg() -> MpfConfig {
        MpfConfig::new(4, 4)
            .with_max_messages(16)
            .with_total_blocks(64)
    }

    #[test]
    fn inspector_sees_live_session_state() {
        if !mpf_shm::sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique_name("live");
        let cfg = small_cfg();
        let mpf = IpcMpf::create(&name, &cfg).unwrap();
        let tx = mpf.open_send("metrics").unwrap();
        let _rx = mpf.open_receive("metrics", Protocol::Fcfs).unwrap();
        mpf.message_send(tx, b"hello-inspector").unwrap();

        let insp = RegionInspector::attach(&name).unwrap();
        assert!(insp.telemetry_enabled());
        assert_eq!(insp.config().max_lnvcs, 4);
        assert_eq!(insp.next_stamp(), 1);

        let procs = insp.processes();
        assert_eq!(procs.len(), 4);
        assert_eq!(procs[0].state, "attached");
        assert!(procs[0].alive);
        assert_eq!(procs[0].os_pid, std::process::id());

        let lnvcs = insp.lnvcs();
        assert_eq!(lnvcs.len(), 1);
        assert_eq!(lnvcs[0].name, "metrics");
        assert_eq!(lnvcs[0].queued, 1);
        assert_eq!(lnvcs[0].n_senders, 1);
        assert_eq!(lnvcs[0].n_fcfs, 1);
        assert!(!lnvcs[0].poisoned);
        assert_eq!(lnvcs[0].tel.sends, 1);

        let t = insp.telemetry_snapshot();
        assert_eq!(t.sends, 1);
        assert_eq!(t.bytes_in, 15);
        assert_eq!(t.size_hist.count, 1);

        // Our own flight ring shows the open/send history.
        let ev = insp.flight_events(mpf.pid());
        assert!(ev.len() >= 3, "expected open/open/send, got {ev:?}");
        assert_eq!(insp.ring_writer(mpf.pid()), std::process::id());
        drop(mpf);
    }

    #[test]
    fn inspector_reports_aio_ring_counters() {
        if !mpf_shm::sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique_name("aio");
        let mpf = IpcMpf::create(&name, &small_cfg()).unwrap();
        let tx = mpf.open_send("bulk").unwrap();
        let _rx = mpf.open_receive("bulk", Protocol::Fcfs).unwrap();
        let payloads: Vec<&[u8]> = vec![b"a", b"bb", b"ccc"];
        assert_eq!(mpf.send_batch(tx, &payloads).unwrap().len(), 3);

        let insp = RegionInspector::attach(&name).unwrap();
        let rings = insp.aio_rings();
        assert_eq!(rings.len(), 4, "one ring pair per process slot");
        let mine = &rings[mpf.pid() as usize].stats;
        assert_eq!(mine.submitted, 3);
        assert_eq!(mine.drained, 3);
        assert_eq!(mine.completed, 3);
        assert_eq!(mine.reaped, 3);
        assert_eq!(mine.sq_doorbells, 1);
        assert_eq!(mine.sq_depth, 0);
        assert_eq!(mine.cq_depth, 0);
    }

    #[test]
    fn inspector_rejects_garbage_region() {
        if !mpf_shm::sys::HAVE_SYSCALLS {
            return;
        }
        assert!(matches!(
            RegionInspector::attach(&unique_name("missing")),
            Err(AttachError::Io(_))
        ));
    }

    #[test]
    fn inspector_surfaces_trace_rings() {
        if !mpf_shm::sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique_name("trace");
        let mpf = IpcMpf::create(&name, &small_cfg()).unwrap();
        let tx = mpf.open_send("traced").unwrap();
        let rx = mpf.open_receive("traced", Protocol::Fcfs).unwrap();
        mpf.message_send(tx, b"follow me").unwrap();
        let mut buf = [0u8; 16];
        mpf.message_receive(rx, &mut buf).unwrap();

        let insp = RegionInspector::attach(&name).unwrap();
        assert!(insp.trace_enabled());
        let rings = insp.trace_rings();
        assert_eq!(rings.len(), 4, "one trace ring per process slot");
        let mine = rings[mpf.pid() as usize];
        assert!(mine.recorded >= 3, "open marker + send + recv at least");
        assert_eq!(mine.overwritten, 0);
        assert_eq!(mine.writer_pid, std::process::id());
        let ev = insp.trace_events(mpf.pid());
        assert_eq!(ev.len() as u64, mine.recorded);
        assert!(ev.iter().any(|e| e.trace != 0), "a traced send survived");
    }

    /// Seeded byte-flip fuzz: whatever single byte is corrupted, the
    /// inspector must either attach cleanly or return an error — never
    /// panic, never hang.  Each flip is restored before the next so the
    /// probes stay independent.
    #[test]
    fn inspector_survives_seeded_corruption() {
        if !mpf_shm::sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique_name("fuzz");
        let mpf = IpcMpf::create(&name, &small_cfg()).unwrap();
        let tx = mpf.open_send("victim").unwrap();
        let _rx = mpf.open_receive("victim", Protocol::Fcfs).unwrap();
        for i in 0..4u8 {
            mpf.message_send(tx, &[i; 100]).unwrap();
        }
        let raw = ShmRegion::attach(&name).unwrap();
        let len = raw.len();
        // xorshift64*: deterministic, so a failure reproduces exactly.
        let mut seed = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..256 {
            let r = next();
            let off = (r as usize) % len;
            let flip = ((r >> 40) as u8) | 1;
            let p = unsafe { raw.bytes_at(off, 1) };
            let old = unsafe { std::ptr::read_volatile(p) };
            unsafe { std::ptr::write_volatile(p, old ^ flip) };
            if let Ok(insp) = RegionInspector::attach(&name) {
                let _ = insp.processes();
                let _ = insp.lnvcs();
                let _ = insp.telemetry_snapshot();
                let _ = insp.aio_rings();
                let _ = insp.trace_rings();
                for pid in 0..insp.config().max_processes {
                    let _ = insp.flight_events(pid);
                    let _ = insp.trace_events(pid);
                }
            }
            unsafe { std::ptr::write_volatile(p, old) };
        }
        // The region is pristine again; a normal attach must still work.
        assert!(RegionInspector::attach(&name).is_ok());
        drop(mpf);
    }

    #[test]
    fn inspector_is_readonly_and_unobtrusive() {
        if !mpf_shm::sys::HAVE_SYSCALLS {
            return;
        }
        let name = unique_name("ro");
        let cfg = small_cfg();
        let mpf = IpcMpf::create(&name, &cfg).unwrap();
        let insp = RegionInspector::attach(&name).unwrap();
        // Attaching the inspector claims no process slot.
        assert_eq!(
            insp.processes()
                .iter()
                .filter(|p| p.state == "attached")
                .count(),
            1
        );
        // The session keeps working with the inspector mapped.
        let tx = mpf.open_send("c").unwrap();
        let rx = mpf.open_receive("c", Protocol::Fcfs).unwrap();
        mpf.message_send(tx, b"x").unwrap();
        let mut buf = [0u8; 8];
        assert_eq!(mpf.message_receive(rx, &mut buf).unwrap(), 1);
        assert_eq!(insp.telemetry_snapshot().receives, 1);
    }
}
