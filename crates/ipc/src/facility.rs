//! The multi-process MPF facility: the paper's eight primitives executed
//! directly against a named, mmap'd shared-memory region.
//!
//! Where `mpf-core`'s thread backend keeps descriptors in typed Rust
//! pools, this backend performs the literal carve of
//! [`RegionLayout::for_ipc`]: every descriptor is a `#[repr(C)]` struct
//! overlaid on region bytes, every link a `u32` index, every blocking
//! wait a cross-process futex.  Any process on the machine can
//! [`IpcMpf::attach`] the region by name and converse with the creator.
//!
//! Dead-peer robustness (the part the 1987 paper never needed, because a
//! hung Balance process took the whole job down with it): every attached
//! process owns a heartbeat slot carrying its OS pid.  Lock acquisition
//! probes holders that stall past a patience threshold and breaks locks
//! whose holders died ([`mpf_shm::IpcLock`]); the liveness sweep
//! ([`IpcMpf::sweep_dead_peers`]) detects dead peers, unlinks their
//! connections, and **poisons** the conversations they touched so
//! survivors unblock with [`MpfError::PeerDied`] instead of deadlocking.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use mpf::aio::{AioCompletion, AioStats};
use mpf::layout::{RegionLayout, LAYOUT_VERSION, REGION_MAGIC};
use mpf::{LnvcName, MpfConfig, MpfError, Protocol, Reclaimable, Result};
use mpf_shm::faultplane::{self, FaultSite};
use mpf_shm::ring::{AioRing, RingEntry};
use mpf_shm::telemetry::{
    bump, now_nanos, FacilityTelemetry, FlightEvent, FlightRing, LnvcTelSnapshot, LnvcTelemetry,
    TelSnapshot, EV_CLOSE_RECV, EV_CLOSE_SEND, EV_LOCK_CONTEND, EV_OPEN_RECV, EV_OPEN_SEND,
    EV_POISONED, EV_RECLAIM, EV_RECV, EV_RECV_BLOCK, EV_SEND, EV_SEND_BLOCK, EV_SWEEP_DEAD,
};
use mpf_shm::tracering::{
    TraceEvent, TraceRing, TR_CLOSE_RECV, TR_ENQUEUE, TR_FAULT, TR_OPEN_RECV, TR_POISON,
    TR_RECLAIM, TR_RECV, TR_RECV_B, TR_SEND, TR_WAKEUP,
};
use mpf_shm::ShmRegion;

use crate::shmem::{
    msg_flags, region_state, slot_state, LnvcDesc, MsgDesc, ProcessSlot, RecvDesc, RegionHeader,
    RegistryEntry, SendDesc, NIL,
};

/// How long a blocked receive sleeps between liveness sweeps.
const RECV_SWEEP_INTERVAL: Duration = Duration::from_millis(50);
/// How long `attach` waits for the creator to finish carving.
const ATTACH_BARRIER_TIMEOUT: Duration = Duration::from_secs(10);

/// Handle to one conversation: `generation << 32 | descriptor index`.
/// Stale handles from deleted conversations are detected, not dereferenced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IpcLnvcId(u64);

impl IpcLnvcId {
    fn new(generation: u32, index: u32) -> Self {
        Self(((generation as u64) << 32) | index as u64)
    }

    fn index(self) -> u32 {
        self.0 as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }

    /// Raw transport form (for FFI).
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a handle from its raw form.
    pub fn from_raw(raw: u64) -> Self {
        Self(raw)
    }
}

/// Errors from region creation/attachment (everything after that speaks
/// [`MpfError`]).
#[derive(Debug)]
pub enum AttachError {
    /// The OS refused the shared mapping (or the region does not exist).
    Io(std::io::Error),
    /// The region exists but its header disagrees with this library
    /// (magic, layout version) or all process slots are taken.
    Mpf(MpfError),
}

impl std::fmt::Display for AttachError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttachError::Io(e) => write!(f, "shared region i/o: {e}"),
            AttachError::Mpf(e) => write!(f, "shared region rejected: {e}"),
        }
    }
}

impl std::error::Error for AttachError {}

impl From<std::io::Error> for AttachError {
    fn from(e: std::io::Error) -> Self {
        AttachError::Io(e)
    }
}

impl From<MpfError> for AttachError {
    fn from(e: MpfError) -> Self {
        AttachError::Mpf(e)
    }
}

/// Which connection pool an index-linked list lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnKind {
    Send,
    Recv,
}

/// Resolved byte offsets of every segment (computed once at map time from
/// the config echo — identical in every process because the layout is a
/// pure function of the config).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Offsets {
    pub(crate) header: usize,
    pub(crate) slots: usize,
    pub(crate) lnvcs: usize,
    pub(crate) registry: usize,
    pub(crate) msgs: usize,
    pub(crate) sends: usize,
    pub(crate) recvs: usize,
    pub(crate) links: usize,
    pub(crate) payloads: usize,
    pub(crate) fac_tel: usize,
    pub(crate) lnvc_tel: usize,
    pub(crate) rings: usize,
    pub(crate) trace_rings: usize,
    pub(crate) aio_sq: usize,
    pub(crate) aio_cq: usize,
}

/// Pool sizes (config echo, denormalized for hot-path use).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Counts {
    pub(crate) max_lnvcs: u32,
    pub(crate) max_processes: u32,
    pub(crate) block_payload: usize,
    pub(crate) total_blocks: u32,
    pub(crate) max_messages: u32,
}

pub(crate) fn offsets_for(cfg: &MpfConfig) -> Offsets {
    let l = RegionLayout::for_ipc(cfg);
    let seg = |name: &str| l.segment(name).expect("for_ipc segment").offset;
    Offsets {
        header: seg("region header"),
        slots: seg("process slots"),
        lnvcs: seg("lnvc descriptors"),
        registry: seg("name registry"),
        msgs: seg("message headers"),
        sends: seg("send descriptors"),
        recvs: seg("receive descriptors"),
        links: seg("block links"),
        payloads: seg("block payloads"),
        fac_tel: seg("facility telemetry"),
        lnvc_tel: seg("lnvc telemetry"),
        rings: seg("flight rings"),
        trace_rings: seg("trace rings"),
        aio_sq: seg("aio sq rings"),
        aio_cq: seg("aio cq rings"),
    }
}

/// The multi-process facility handle: one per process (or per
/// [`IpcMpf::attach_view`] for in-process tests of position independence).
#[derive(Debug)]
pub struct IpcMpf {
    region: ShmRegion,
    off: Offsets,
    counts: Counts,
    /// Our process slot index — the MPF process id.
    me: u32,
    /// Whether telemetry recording is on (creator's choice, echoed in the
    /// header so every attacher agrees).  The segments exist either way.
    tel_on: bool,
    /// Latency sampling period (creator's choice, echoed in the header):
    /// stamp `sent_at` on 1-in-N sends.
    latency_every: u32,
    /// Local send counter driving the 1-in-N latency sample.
    latency_tick: AtomicU64,
    /// Chain-sampling period (creator's choice, echoed in the header):
    /// mint a traced root for 1-in-N new causal chains; 0 disables
    /// tracing entirely.
    trace_every: u32,
    /// Local counter driving root-id serials and the 1-in-N chain sample.
    trace_tick: AtomicU64,
    /// This process's causal context: the chain of its last delivery,
    /// which its next send continues (one handle = one process).  An
    /// untraced delivery clears it, so unsampled chains never splice
    /// into sampled ones.
    ctx_trace: AtomicU64,
    ctx_hop: AtomicU32,
}

impl IpcMpf {
    // -- construction --------------------------------------------------

    /// Creates the named region, carves it, and claims process slot 0.
    pub fn create(name: &str, cfg: &MpfConfig) -> std::result::Result<Self, AttachError> {
        // Calibrate the cycle-counter clock before any event can need a
        // timestamp (one-time cost, shared by telemetry and tracing).
        mpf_shm::clock::calibrate();
        let layout = RegionLayout::for_ipc(cfg);
        let total = layout.total_bytes();
        let region = ShmRegion::create(name, total)?;
        let off = offsets_for(cfg);
        let counts = Counts {
            max_lnvcs: cfg.max_lnvcs,
            max_processes: cfg.max_processes,
            block_payload: cfg.block_payload,
            total_blocks: cfg.total_blocks,
            max_messages: cfg.max_messages,
        };
        let mut this = Self {
            region,
            off,
            counts,
            me: 0,
            tel_on: cfg.telemetry,
            latency_every: cfg.latency_sample_every.max(1),
            latency_tick: AtomicU64::new(0),
            trace_every: cfg.trace_sample_every,
            trace_tick: AtomicU64::new(0),
            ctx_trace: AtomicU64::new(0),
            ctx_hop: AtomicU32::new(0),
        };
        this.carve(cfg, total);
        this.me = this.claim_slot().map_err(AttachError::Mpf)?;
        Ok(this)
    }

    /// Attaches an existing region by name, verifying its header, and
    /// claims a free process slot.
    pub fn attach(name: &str) -> std::result::Result<Self, AttachError> {
        let region = Self::attach_region_with_barrier(name)?;
        Self::adopt(region)
    }

    /// Maps the same region a second time (at a different base address)
    /// and claims a fresh process slot — an in-process stand-in for
    /// another OS process, used by position-independence tests.
    pub fn attach_view(&self) -> std::result::Result<Self, AttachError> {
        let region = self.region.attach_again()?;
        Self::adopt(region)
    }

    fn attach_region_with_barrier(name: &str) -> std::result::Result<ShmRegion, AttachError> {
        // The creator writes the file length before carving, so a fresh
        // attach can observe a zero-length or still-building region; spin
        // on both until the init barrier opens.
        let deadline = Instant::now() + ATTACH_BARRIER_TIMEOUT;
        loop {
            match ShmRegion::attach(name) {
                Ok(region) => return Ok(region),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if Instant::now() >= deadline {
                        return Err(AttachError::Io(e));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(AttachError::Io(e)),
            }
        }
    }

    fn adopt(region: ShmRegion) -> std::result::Result<Self, AttachError> {
        mpf_shm::clock::calibrate();
        if region.len() < std::mem::size_of::<RegionHeader>() {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found: 0,
            }
            .into());
        }
        let header: &RegionHeader = unsafe { region.at(0) };
        // Init barrier: wait for the creator to finish carving.
        let deadline = Instant::now() + ATTACH_BARRIER_TIMEOUT;
        while header.state.load(Ordering::Acquire) != region_state::READY {
            if Instant::now() >= deadline {
                return Err(AttachError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    "region never became ready",
                )));
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        if header.magic.load(Ordering::Acquire) != REGION_MAGIC {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found: 0,
            }
            .into());
        }
        let found = header.layout_version.load(Ordering::Acquire);
        if found != LAYOUT_VERSION {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found,
            }
            .into());
        }
        let cfg = header.cfg.decode().ok_or(MpfError::LayoutMismatch {
            expected: LAYOUT_VERSION,
            found,
        })?;
        // Defense in depth beyond the version word: the creator stored the
        // total it carved; if OUR layout computation for the echoed config
        // disagrees, this binary and the creator carve different segment
        // maps and every offset past the header would be garbage.
        let expected_bytes = header.total_bytes.load(Ordering::Acquire) as usize;
        let computed_bytes = RegionLayout::for_ipc(&cfg).total_bytes();
        if region.len() < expected_bytes || computed_bytes != expected_bytes {
            return Err(MpfError::LayoutMismatch {
                expected: LAYOUT_VERSION,
                found,
            }
            .into());
        }
        let counts = Counts {
            max_lnvcs: cfg.max_lnvcs,
            max_processes: cfg.max_processes,
            block_payload: cfg.block_payload,
            total_blocks: cfg.total_blocks,
            max_messages: cfg.max_messages,
        };
        let mut this = Self {
            region,
            off: offsets_for(&cfg),
            counts,
            me: 0,
            tel_on: cfg.telemetry,
            latency_every: cfg.latency_sample_every,
            latency_tick: AtomicU64::new(0),
            trace_every: cfg.trace_sample_every,
            trace_tick: AtomicU64::new(0),
            ctx_trace: AtomicU64::new(0),
            ctx_hop: AtomicU32::new(0),
        };
        this.me = this.claim_slot().map_err(AttachError::Mpf)?;
        Ok(this)
    }

    /// One-time carve: header fields, then free-list threading, then the
    /// `state = READY` barrier release (`Release` ordering publishes the
    /// carve to attaching processes).
    fn carve(&self, cfg: &MpfConfig, total: usize) {
        let h = self.header();
        h.layout_version.store(LAYOUT_VERSION, Ordering::Relaxed);
        h.total_bytes.store(total as u64, Ordering::Relaxed);
        h.cfg.max_lnvcs.store(cfg.max_lnvcs, Ordering::Relaxed);
        h.cfg
            .max_processes
            .store(cfg.max_processes, Ordering::Relaxed);
        h.cfg
            .block_payload
            .store(cfg.block_payload as u32, Ordering::Relaxed);
        h.cfg
            .total_blocks
            .store(cfg.total_blocks, Ordering::Relaxed);
        h.cfg
            .max_messages
            .store(cfg.max_messages, Ordering::Relaxed);
        h.cfg
            .max_send_conns
            .store(cfg.max_send_conns, Ordering::Relaxed);
        h.cfg
            .max_recv_conns
            .store(cfg.max_recv_conns, Ordering::Relaxed);
        h.cfg
            .telemetry
            .store(cfg.telemetry as u32, Ordering::Relaxed);
        h.cfg
            .latency_sample_every
            .store(cfg.latency_sample_every.max(1), Ordering::Relaxed);
        h.cfg
            .trace_sample_every
            .store(cfg.trace_sample_every, Ordering::Relaxed);
        // Thread the four free lists (region bytes start zeroed; push in
        // reverse so pops hand out low indices first).
        h.msg_free.reset();
        for i in (0..cfg.max_messages).rev() {
            h.msg_free
                .push(i, |s, n| self.msg(s).next.store(n, Ordering::Relaxed));
        }
        h.block_free.reset();
        for i in (0..cfg.total_blocks).rev() {
            h.block_free
                .push(i, |s, n| self.block_link(s).store(n, Ordering::Relaxed));
        }
        h.send_free.reset();
        for i in (0..cfg.max_send_conns).rev() {
            h.send_free
                .push(i, |s, n| self.send(s).next.store(n, Ordering::Relaxed));
        }
        h.recv_free.reset();
        for i in (0..cfg.max_recv_conns).rev() {
            h.recv_free
                .push(i, |s, n| self.recv(s).next.store(n, Ordering::Relaxed));
        }
        for i in 0..cfg.max_lnvcs {
            self.lnvc(i).q_head.store(NIL, Ordering::Relaxed);
            self.lnvc(i).q_tail.store(NIL, Ordering::Relaxed);
            self.lnvc(i).send_head.store(NIL, Ordering::Relaxed);
            self.lnvc(i).recv_head.store(NIL, Ordering::Relaxed);
        }
        for p in 0..cfg.max_processes {
            self.aio_sq(p).reset();
            self.aio_cq(p).reset();
        }
        h.magic.store(REGION_MAGIC, Ordering::Release);
        h.state.store(region_state::READY, Ordering::Release);
    }

    /// Claims a free (or swept-dead) process slot; the index becomes this
    /// process's MPF pid.
    fn claim_slot(&self) -> Result<u32> {
        for i in 0..self.counts.max_processes {
            let s = self.slot(i);
            for from in [slot_state::FREE, slot_state::DEAD] {
                if s.state
                    .compare_exchange(
                        from,
                        slot_state::ATTACHED,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok()
                {
                    // A predecessor that died (or detached) with staged
                    // submissions would leak its pool allocations into the
                    // new owner's ring; reclaim before reuse.
                    self.reclaim_aio_of(i);
                    s.os_pid.store(std::process::id(), Ordering::Release);
                    s.generation.fetch_add(1, Ordering::AcqRel);
                    s.heartbeat.store(1, Ordering::Release);
                    // Tag the slot's flight ring with the new writer; on a
                    // recycled slot the predecessor's (timestamped) events
                    // remain readable until overwritten.
                    self.ring(i).set_writer_pid(std::process::id());
                    self.trace_ring(i).set_writer_pid(std::process::id());
                    return Ok(i);
                }
            }
        }
        Err(MpfError::InvalidProcess)
    }

    // -- raw accessors -------------------------------------------------

    fn header(&self) -> &RegionHeader {
        unsafe { self.region.at(self.off.header) }
    }

    fn slot(&self, i: u32) -> &ProcessSlot {
        debug_assert!(i < self.counts.max_processes);
        unsafe {
            self.region
                .at(self.off.slots + i as usize * std::mem::size_of::<ProcessSlot>())
        }
    }

    fn lnvc(&self, i: u32) -> &LnvcDesc {
        debug_assert!(i < self.counts.max_lnvcs);
        unsafe {
            self.region
                .at(self.off.lnvcs + i as usize * std::mem::size_of::<LnvcDesc>())
        }
    }

    fn reg_entry(&self, i: u32) -> &RegistryEntry {
        unsafe {
            self.region
                .at(self.off.registry + i as usize * std::mem::size_of::<RegistryEntry>())
        }
    }

    fn msg(&self, i: u32) -> &MsgDesc {
        debug_assert!(i < self.counts.max_messages);
        unsafe {
            self.region
                .at(self.off.msgs + i as usize * std::mem::size_of::<MsgDesc>())
        }
    }

    fn send(&self, i: u32) -> &SendDesc {
        unsafe {
            self.region
                .at(self.off.sends + i as usize * std::mem::size_of::<SendDesc>())
        }
    }

    fn recv(&self, i: u32) -> &RecvDesc {
        unsafe {
            self.region
                .at(self.off.recvs + i as usize * std::mem::size_of::<RecvDesc>())
        }
    }

    fn block_link(&self, i: u32) -> &AtomicU32 {
        debug_assert!(i < self.counts.total_blocks);
        unsafe { self.region.at(self.off.links + i as usize * 4) }
    }

    fn payload_ptr(&self, block: u32) -> *mut u8 {
        unsafe {
            self.region.bytes_at(
                self.off.payloads + block as usize * self.counts.block_payload,
                self.counts.block_payload,
            )
        }
    }

    /// Process `slot`'s facility-telemetry shard.  Sharding keeps hot
    /// counters processor-local; [`Self::telemetry_snapshot`] sums them.
    fn fac_tel(&self, slot: u32) -> &FacilityTelemetry {
        debug_assert!(slot < self.counts.max_processes);
        unsafe {
            self.region
                .at(self.off.fac_tel + slot as usize * std::mem::size_of::<FacilityTelemetry>())
        }
    }

    fn lnvc_tel(&self, i: u32) -> &LnvcTelemetry {
        debug_assert!(i < self.counts.max_lnvcs);
        unsafe {
            self.region
                .at(self.off.lnvc_tel + i as usize * std::mem::size_of::<LnvcTelemetry>())
        }
    }

    fn ring(&self, p: u32) -> &FlightRing {
        debug_assert!(p < self.counts.max_processes);
        unsafe {
            self.region
                .at(self.off.rings + p as usize * std::mem::size_of::<FlightRing>())
        }
    }

    /// Process `p`'s causal trace ring.
    fn trace_ring(&self, p: u32) -> &TraceRing {
        debug_assert!(p < self.counts.max_processes);
        unsafe {
            self.region
                .at(self.off.trace_rings + p as usize * std::mem::size_of::<TraceRing>())
        }
    }

    /// Process `p`'s aio submission ring.
    fn aio_sq(&self, p: u32) -> &AioRing {
        debug_assert!(p < self.counts.max_processes);
        unsafe {
            self.region
                .at(self.off.aio_sq + p as usize * std::mem::size_of::<AioRing>())
        }
    }

    /// Process `p`'s aio completion ring.
    fn aio_cq(&self, p: u32) -> &AioRing {
        debug_assert!(p < self.counts.max_processes);
        unsafe {
            self.region
                .at(self.off.aio_cq + p as usize * std::mem::size_of::<AioRing>())
        }
    }

    /// Frees every message still staged in process `p`'s submission ring
    /// and discards its unreaped completions.  Called when a slot changes
    /// hands (dead-peer sweep, slot reuse, clean detach): staged messages
    /// were allocated from the shared pools but never enqueued, so nobody
    /// else will ever free them.
    fn reclaim_aio_of(&self, p: u32) {
        let sq = self.aio_sq(p);
        while let Some(e) = sq.try_pop() {
            if e.arg0 < self.counts.max_messages {
                self.free_message(e.arg0);
            }
        }
        let cq = self.aio_cq(p);
        while cq.try_pop().is_some() {}
    }

    // -- telemetry plumbing --------------------------------------------

    /// This process's facility-counter shard, gated on the recording flag.
    #[inline]
    fn tel(&self) -> Option<&FacilityTelemetry> {
        self.tel_on.then(|| self.fac_tel(self.me))
    }

    /// Appends to this process's flight ring (single-writer: only `me`'s
    /// slot owner writes `me`'s ring).
    #[inline]
    fn fly(&self, kind: u32, lnvc: u32, arg: u64) {
        if self.tel_on {
            self.ring(self.me).record(kind, lnvc, arg);
        }
    }

    /// [`fly`](Self::fly) with a timestamp the caller already has, saving
    /// a clock read on the send/receive hot paths.
    #[inline]
    fn fly_at(&self, tstamp: u64, kind: u32, lnvc: u32, arg: u64) {
        if self.tel_on {
            self.ring(self.me).record_at(tstamp, kind, lnvc, arg);
        }
    }

    /// Books `freed` reclaimed messages against the facility and LNVC
    /// counters (no-op when nothing was freed or telemetry is off).
    fn note_reclaim(&self, idx: u32, freed: u32) {
        if freed == 0 {
            return;
        }
        let Some(t) = self.tel() else { return };
        t.reclaims.add(freed as u64);
        self.lnvc_tel(idx)
            .reclaims
            .fetch_add(freed as u64, Ordering::Relaxed);
        self.fly(EV_RECLAIM, idx, freed as u64);
    }

    /// Liveness oracle for [`mpf_shm::IpcLock`] holders.  Lock owner ids
    /// are `mpf_pid + 1` (0 means "free"), hence the shift.
    fn holder_alive(&self, owner: u32) -> bool {
        if owner == 0 || owner > self.counts.max_processes {
            return false;
        }
        self.slot(owner - 1).owner_alive()
    }

    fn lock_owner(&self) -> u32 {
        self.me + 1
    }

    /// Acquires an LNVC (or registry) lock, poisoning `d` if the previous
    /// holder died inside its critical section.
    fn lock_lnvc(&self, d: &LnvcDesc) {
        let (acq, contended) = d
            .lock
            .lock_traced(self.lock_owner(), |o| self.holder_alive(o));
        if contended {
            if let Some(t) = self.tel() {
                t.lock_contended.inc();
                self.fly(EV_LOCK_CONTEND, NIL, 0);
            }
        }
        if matches!(acq, mpf_shm::IpcAcquire::Poisoned) {
            // The structure may be torn; survivors must not trust it.
            // The broken lock knows which owner died — surface it so
            // PeerDied names the right process.
            if let Some(owner) = d.lock.poison_culprit() {
                d.dead_pid.store(owner - 1, Ordering::Release);
            }
            // Poison is sticky, so every later acquire lands here too —
            // log the flight event only on the 0→1 transition.
            if d.poisoned.swap(1, Ordering::AcqRel) == 0 {
                let dead = d.dead_pid.load(Ordering::Acquire);
                self.fly(EV_POISONED, NIL, dead as u64);
                self.trace_pop(TR_POISON, NIL, dead);
            }
            d.waitq.notify_all();
        }
    }

    fn heartbeat(&self) {
        self.slot(self.me).heartbeat.fetch_add(1, Ordering::Relaxed);
    }

    /// Whether this send should carry a latency origin stamp (1-in-N
    /// sampling, period fixed at region creation).
    #[inline]
    fn sample_latency(&self) -> bool {
        self.latency_every <= 1
            || self
                .latency_tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(u64::from(self.latency_every))
    }

    // -- causal tracing -------------------------------------------------

    /// Whether causal tracing is enabled for this region (the creator's
    /// `trace_sample_rate(0)` turns it off, echoed in the header).
    #[inline]
    fn tracing(&self) -> bool {
        self.trace_every != 0
    }

    /// Decides the (trace id, hop) of a send by this process: continues
    /// the chain of the process's last delivery when there is one, else
    /// mints a root id — sampled 1-in-N, with the owner pid in bits
    /// 40..63, a serial in the low 40 bits, and the sampled flag in bit
    /// 63.  `(0, 0)` = untraced.
    fn trace_for_send(&self) -> (u64, u32) {
        if !self.tracing() {
            return (0, 0);
        }
        let inherited = self.ctx_trace.load(Ordering::Relaxed);
        if inherited != 0 {
            return (inherited, self.ctx_hop.load(Ordering::Relaxed) + 1);
        }
        let n = self.trace_tick.fetch_add(1, Ordering::Relaxed);
        if !n.is_multiple_of(u64::from(self.trace_every)) {
            self.trace_ring(self.me).note_skipped();
            return (0, 0);
        }
        // The serial is process-local, but the owner bits make roots
        // unique region-wide.
        let root = (1u64 << 63) | ((u64::from(self.me) + 1) << 40) | (n & ((1u64 << 40) - 1));
        (root, 0)
    }

    /// Appends one record to this process's trace ring; a no-op for
    /// untraced chains, so callers thread the gate through `trace == 0`.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn trace_rec(
        &self,
        kind: u32,
        hop: u32,
        trace: u64,
        lnvc: u32,
        stamp: u64,
        arg: u32,
        arg2: u32,
    ) {
        self.trace_rec_at(0, kind, hop, trace, lnvc, stamp, arg, arg2);
    }

    /// [`trace_rec`](Self::trace_rec) with a timestamp the caller already
    /// has (0 = read the clock here), sharing one clock read across the
    /// trace records, latency sample, and flight records of an operation.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn trace_rec_at(
        &self,
        tstamp: u64,
        kind: u32,
        hop: u32,
        trace: u64,
        lnvc: u32,
        stamp: u64,
        arg: u32,
        arg2: u32,
    ) {
        if trace != 0 {
            let t = if tstamp != 0 { tstamp } else { now_nanos() };
            self.trace_ring(self.me)
                .record_at(t, trace, stamp, kind, hop, lnvc, arg, arg2);
        }
    }

    /// Records a marker event (`TR_OPEN_RECV` / `TR_CLOSE_RECV` /
    /// `TR_POISON`).  Not sampled: the conformance checker needs the
    /// receiver-population timeline even across untraced gaps.
    fn trace_pop(&self, kind: u32, lnvc: u32, arg: u32) {
        if self.tracing() {
            self.trace_ring(self.me)
                .record_at(now_nanos(), 0, 0, kind, 0, lnvc, arg, 0);
        }
    }

    /// Records an injected fault and the typed error it surfaced as.
    /// Not sampled, like [`trace_pop`](Self::trace_pop): the `mpf-trace`
    /// conformance checker audits that every error-class injection
    /// produced a typed error (`arg2 != 0`), never silent corruption.
    fn trace_fault(&self, site: FaultSite, err: &MpfError) {
        if self.tracing() {
            self.trace_ring(self.me).record_at(
                now_nanos(),
                0,
                0,
                TR_FAULT,
                0,
                u32::MAX,
                site.code(),
                err.status_code().unsigned_abs(),
            );
        }
    }

    /// Adopts a delivered message's chain as this process's causal
    /// context; an untraced delivery clears it.
    #[inline]
    fn adopt_trace(&self, trace: u64, hop: u32) {
        if self.tracing() {
            self.ctx_trace.store(trace, Ordering::Relaxed);
            self.ctx_hop.store(hop, Ordering::Relaxed);
        }
    }

    // -- identity ------------------------------------------------------

    /// This process's MPF pid (its process-slot index).
    pub fn pid(&self) -> u32 {
        self.me
    }

    /// Number of process slots the region was carved for
    /// (`MpfConfig::max_processes`).
    pub fn max_processes(&self) -> u32 {
        self.counts.max_processes
    }

    /// Total region bytes mapped.
    pub fn region_bytes(&self) -> usize {
        self.region.len()
    }

    /// Base address of this mapping (differs between processes — that is
    /// the point).
    pub fn base_addr(&self) -> usize {
        self.region.base() as usize
    }

    // -- the eight primitives ------------------------------------------

    /// `open_LNVC_send`: joins (or creates) the named conversation as a
    /// sender.
    pub fn open_send(&self, name: &str) -> Result<IpcLnvcId> {
        let lname = LnvcName::new(name)?;
        self.heartbeat();
        self.with_registry(|| {
            let (idx, created) = self.find_or_create(lname.as_str())?;
            let d = self.lnvc(idx);
            self.lock_lnvc(d);
            let result = (|| {
                if d.poisoned.load(Ordering::Acquire) != 0 {
                    return Err(MpfError::PeerDied {
                        pid: d.dead_pid.load(Ordering::Acquire),
                    });
                }
                if self
                    .find_conn(ConnKind::Send, d.send_head.load(Ordering::Acquire), self.me)
                    .is_some()
                {
                    return Err(MpfError::AlreadyConnected);
                }
                let conn = self
                    .header()
                    .send_free
                    .pop(|i| self.send(i).next.load(Ordering::Acquire))
                    .ok_or(MpfError::ConnectionsExhausted)?;
                let s = self.send(conn);
                s.pid.store(self.me, Ordering::Release);
                s.next
                    .store(d.send_head.load(Ordering::Acquire), Ordering::Release);
                d.send_head.store(conn, Ordering::Release);
                d.n_senders.fetch_add(1, Ordering::AcqRel);
                Ok(IpcLnvcId::new(d.generation.load(Ordering::Acquire), idx))
            })();
            if result.is_err() && created {
                self.deactivate(idx);
            }
            d.lock.unlock();
            if result.is_ok() {
                self.fly(EV_OPEN_SEND, idx, 0);
            }
            result
        })
    }

    /// `open_LNVC_receive`: joins (or creates) the named conversation as
    /// an FCFS or BROADCAST receiver.
    pub fn open_receive(&self, name: &str, protocol: Protocol) -> Result<IpcLnvcId> {
        let lname = LnvcName::new(name)?;
        self.heartbeat();
        self.with_registry(|| {
            let (idx, created) = self.find_or_create(lname.as_str())?;
            let d = self.lnvc(idx);
            self.lock_lnvc(d);
            let result = (|| {
                if d.poisoned.load(Ordering::Acquire) != 0 {
                    return Err(MpfError::PeerDied {
                        pid: d.dead_pid.load(Ordering::Acquire),
                    });
                }
                if let Some(existing) =
                    self.find_conn(ConnKind::Recv, d.recv_head.load(Ordering::Acquire), self.me)
                {
                    let have = self.recv(existing).protocol.load(Ordering::Acquire);
                    return Err(if have == proto_code(protocol) {
                        MpfError::AlreadyConnected
                    } else {
                        MpfError::ProtocolConflict
                    });
                }
                let first_receiver =
                    d.n_fcfs.load(Ordering::Acquire) + d.n_bcast.load(Ordering::Acquire) == 0;
                let conn = self
                    .header()
                    .recv_free
                    .pop(|i| self.recv(i).next.load(Ordering::Acquire))
                    .ok_or(MpfError::ConnectionsExhausted)?;
                let r = self.recv(conn);
                r.pid.store(self.me, Ordering::Release);
                r.protocol.store(proto_code(protocol), Ordering::Release);
                // BROADCAST receivers see only messages sent after they
                // join (paper §3.2).
                r.cursor
                    .store(d.next_seq.load(Ordering::Acquire), Ordering::Release);
                r.next
                    .store(d.recv_head.load(Ordering::Acquire), Ordering::Release);
                d.recv_head.store(conn, Ordering::Release);
                match protocol {
                    Protocol::Fcfs => d.n_fcfs.fetch_add(1, Ordering::AcqRel),
                    Protocol::Broadcast => d.n_bcast.fetch_add(1, Ordering::AcqRel),
                };
                // Obligation re-evaluation (DESIGN.md): a backlog queued
                // while nobody listened is owed to the first receiver —
                // but a BROADCAST receiver's cursor starts at the current
                // sequence, so if the first receiver ever to join is
                // BROADCAST the backlog is invisible to everyone and can
                // only pin blocks.  Drop it now.
                if first_receiver && protocol == Protocol::Broadcast {
                    self.clear_fcfs_obligations(d);
                    let freed = self.reclaim_consumed(d);
                    self.note_reclaim(idx, freed);
                }
                Ok(IpcLnvcId::new(d.generation.load(Ordering::Acquire), idx))
            })();
            if result.is_err() && created {
                self.deactivate(idx);
            }
            d.lock.unlock();
            if result.is_ok() {
                self.fly(EV_OPEN_RECV, idx, proto_code(protocol) as u64);
                self.trace_pop(TR_OPEN_RECV, idx, proto_code(protocol));
            }
            result
        })
    }

    /// `close_LNVC_send`: leaves the conversation as a sender; the last
    /// connection out deletes the conversation and frees its queue.
    pub fn close_send(&self, id: IpcLnvcId) -> Result<()> {
        self.heartbeat();
        self.with_registry(|| {
            let (idx, d) = self.resolve(id)?;
            self.lock_lnvc(d);
            let result = (|| {
                let conn = self
                    .unlink_conn(ConnKind::Send, &d.send_head, self.me)
                    .ok_or(MpfError::NotConnected)?;
                self.header()
                    .send_free
                    .push(conn, |s, n| self.send(s).next.store(n, Ordering::Release));
                d.n_senders.fetch_sub(1, Ordering::AcqRel);
                if d.total_connections() == 0 {
                    self.delete_conversation(idx, d);
                }
                Ok(())
            })();
            d.lock.unlock();
            if result.is_ok() {
                self.fly(EV_CLOSE_SEND, idx, 0);
            }
            result
        })
    }

    /// `close_LNVC_receive`: leaves as a receiver.  A departing BROADCAST
    /// receiver releases its delivery claims so fully-delivered messages
    /// can be reclaimed.
    pub fn close_receive(&self, id: IpcLnvcId) -> Result<()> {
        self.heartbeat();
        self.with_registry(|| {
            let (idx, d) = self.resolve(id)?;
            self.lock_lnvc(d);
            let result = (|| {
                let conn = self
                    .unlink_conn(ConnKind::Recv, &d.recv_head, self.me)
                    .ok_or(MpfError::NotConnected)?;
                let r = self.recv(conn);
                let protocol = r.protocol.load(Ordering::Acquire);
                let cursor = r.cursor.load(Ordering::Acquire);
                self.header()
                    .recv_free
                    .push(conn, |s, n| self.recv(s).next.store(n, Ordering::Release));
                if protocol == proto_code(Protocol::Broadcast) {
                    d.n_bcast.fetch_sub(1, Ordering::AcqRel);
                    self.release_bcast_claims(d, cursor);
                } else {
                    d.n_fcfs.fetch_sub(1, Ordering::AcqRel);
                    // Obligation re-evaluation (DESIGN.md): if the last
                    // FCFS receiver just left while BROADCAST receivers
                    // keep the conversation alive, nobody in the current
                    // connection set can ever take the owed messages —
                    // drop the obligation so they become reclaimable
                    // instead of pinning blocks until the LNVC dies.
                    if d.n_fcfs.load(Ordering::Acquire) == 0
                        && d.n_bcast.load(Ordering::Acquire) > 0
                    {
                        self.clear_fcfs_obligations(d);
                    }
                }
                // Close is the slow path: sweep the whole queue, not just
                // the head, so interior messages unpinned above (or
                // consumed behind a still-claimed head) are returned too.
                let freed = self.reclaim_consumed(d);
                self.note_reclaim(idx, freed);
                if d.total_connections() == 0 {
                    self.delete_conversation(idx, d);
                }
                Ok(protocol)
            })();
            d.lock.unlock();
            if let Ok(protocol) = result {
                self.fly(EV_CLOSE_RECV, idx, 0);
                self.trace_pop(TR_CLOSE_RECV, idx, protocol);
            }
            result.map(|_| ())
        })
    }

    /// `message_send`: scatters the payload into shared blocks and
    /// enqueues it on the conversation.
    pub fn message_send(&self, id: IpcLnvcId, payload: &[u8]) -> Result<()> {
        self.heartbeat();
        let max = self.counts.block_payload * self.counts.total_blocks as usize;
        if payload.len() > max {
            return Err(MpfError::MessageTooLarge {
                len: payload.len(),
                max,
            });
        }
        let (idx, d) = self.resolve(id)?;
        // Injected peer death: surface the same typed error a real
        // poisoned conversation produces, without touching the region.
        if faultplane::inject(FaultSite::PeerDied) {
            let err = MpfError::PeerDied { pid: 0 };
            self.trace_fault(FaultSite::PeerDied, &err);
            return Err(err);
        }
        // Poison is sticky for this descriptor generation, so an
        // unlocked pre-check is sound — and it must precede pool
        // allocation: a poisoned conversation whose corpse's messages
        // exhausted the pools would otherwise report `MessagesExhausted`
        // forever instead of `PeerDied`.
        if d.poisoned.load(Ordering::Acquire) != 0 {
            return Err(MpfError::PeerDied {
                pid: d.dead_pid.load(Ordering::Acquire),
            });
        }
        // Allocate from the lock-free pools *before* taking the LNVC
        // lock: exhaustion then never happens inside the critical
        // section, and a death mid-allocation cannot corrupt the queue.
        let m_idx = self.stage_message(idx, d, payload)?;
        let m = self.msg(m_idx);
        // Latency origin stamp; 0 means "not stamped" (telemetry off, or
        // this send fell outside the 1-in-N latency sample), so the
        // receiver never computes latency against a recycled value.
        let sent_at = if self.tel_on && self.sample_latency() {
            now_nanos()
        } else {
            0
        };
        m.sent_at.store(sent_at, Ordering::Release);

        let h = self.header();
        self.lock_lnvc(d);
        let result = (|| {
            if d.poisoned.load(Ordering::Acquire) != 0 {
                return Err(MpfError::PeerDied {
                    pid: d.dead_pid.load(Ordering::Acquire),
                });
            }
            if self
                .find_conn(ConnKind::Send, d.send_head.load(Ordering::Acquire), self.me)
                .is_none()
            {
                return Err(MpfError::NotConnected);
            }
            let n_fcfs = d.n_fcfs.load(Ordering::Acquire);
            let n_bcast = d.n_bcast.load(Ordering::Acquire);
            // Delivery obligations fix at send time (DESIGN.md): one FCFS
            // delivery iff FCFS receivers exist or nobody listens yet;
            // one broadcast delivery per connected BROADCAST receiver.
            let needs_fcfs = n_fcfs > 0 || (n_fcfs + n_bcast) == 0;
            let seq = d.next_seq.fetch_add(1, Ordering::AcqRel);
            let stamp = h.next_stamp.fetch_add(1, Ordering::AcqRel);
            // Causal id stamped under the lock, before receivers can see
            // the message; obligations are fixed at this instant, so the
            // packed arg2 is what the conformance checker audits against.
            let (trace, hop) = self.trace_for_send();
            m.trace.store(trace, Ordering::Release);
            m.hop.store(hop, Ordering::Release);
            m.seq.store(seq, Ordering::Release);
            m.stamp.store(stamp, Ordering::Release);
            m.bcast_pending.store(n_bcast, Ordering::Release);
            m.flags.store(
                if needs_fcfs { msg_flags::NEEDS_FCFS } else { 0 },
                Ordering::Release,
            );
            // Tail-enqueue.
            let tail = d.q_tail.load(Ordering::Acquire);
            if tail == NIL {
                d.q_head.store(m_idx, Ordering::Release);
            } else {
                self.msg(tail).next.store(m_idx, Ordering::Release);
            }
            d.q_tail.store(m_idx, Ordering::Release);
            let depth = d.msg_count.fetch_add(1, Ordering::AcqRel) + 1;
            d.last_stamp.store(stamp, Ordering::Release);
            if let Some(t) = self.tel() {
                t.sends.inc();
                t.bytes_in.add(payload.len() as u64);
                t.size_hist.record(payload.len() as u64);
                // lt.* writes are serialised by the LNVC lock we hold, so
                // the RMW-free `bump` is sound (see telemetry::bump).
                let lt = self.lnvc_tel(idx);
                bump(&lt.sends, 1);
                bump(&lt.bytes_in, payload.len() as u64);
                lt.note_depth(depth as u64);
            }
            Ok((stamp, trace, hop, (u32::from(needs_fcfs) << 16) | n_bcast))
        })();
        d.lock.unlock();
        match result {
            Ok((stamp, trace, hop, obligations)) => {
                if sent_at != 0 {
                    self.fly_at(sent_at, EV_SEND, idx, payload.len() as u64);
                } else {
                    self.fly(EV_SEND, idx, payload.len() as u64);
                }
                self.trace_rec_at(
                    sent_at,
                    TR_SEND,
                    hop,
                    trace,
                    idx,
                    stamp,
                    payload.len() as u32,
                    obligations,
                );
                d.waitq.notify_all();
                Ok(())
            }
            Err(e) => {
                self.free_message(m_idx);
                Err(e)
            }
        }
    }

    /// `check_receive`: non-destructively reports whether a message is
    /// deliverable to this process.
    pub fn check_receive(&self, id: IpcLnvcId) -> Result<bool> {
        self.heartbeat();
        let (_, d) = self.resolve(id)?;
        self.lock_lnvc(d);
        let result = (|| {
            self.poison_check(d)?;
            let conn = self
                .find_conn(ConnKind::Recv, d.recv_head.load(Ordering::Acquire), self.me)
                .ok_or(MpfError::NotConnected)?;
            Ok(self.next_deliverable(d, conn).is_some())
        })();
        d.lock.unlock();
        result
    }

    /// Non-blocking `message_receive`: `Ok(None)` when nothing is
    /// deliverable.
    pub fn try_message_receive(&self, id: IpcLnvcId, buf: &mut [u8]) -> Result<Option<usize>> {
        self.heartbeat();
        let (idx, d) = self.resolve(id)?;
        self.lock_lnvc(d);
        let result = self.receive_locked(idx, d, buf);
        d.lock.unlock();
        result
    }

    /// Blocking `message_receive`: the paper's default.  Waits on the
    /// in-region futex sequence, waking to run a liveness sweep every
    /// [`RECV_SWEEP_INTERVAL`], so a dead sender converts a would-be
    /// deadlock into [`MpfError::PeerDied`].
    pub fn message_receive(&self, id: IpcLnvcId, buf: &mut [u8]) -> Result<usize> {
        self.message_receive_deadline(id, buf, None)
    }

    /// Blocking receive with an optional timeout ([`MpfError::WouldBlock`]
    /// when it expires).
    pub fn message_receive_timeout(
        &self,
        id: IpcLnvcId,
        buf: &mut [u8],
        timeout: Duration,
    ) -> Result<usize> {
        self.message_receive_deadline(id, buf, Some(Instant::now() + timeout))
    }

    fn message_receive_deadline(
        &self,
        id: IpcLnvcId,
        buf: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<usize> {
        // One blocked call is one wait, however many 50 ms naps it takes —
        // counting per nap would turn an idle receiver into a counter storm.
        let mut waited = false;
        loop {
            let (idx, d) = self.resolve(id)?;
            // Injected peer death on the receive path: identical shape to
            // a sweep-detected poisoning, minus the region mutation.
            if faultplane::inject(FaultSite::PeerDied) {
                let err = MpfError::PeerDied { pid: 0 };
                self.trace_fault(FaultSite::PeerDied, &err);
                return Err(err);
            }
            // Ticket before the predicate check (the sequence-count
            // protocol): a send between our check and our wait bumps the
            // sequence and the wait returns immediately.
            let ticket = d.waitq.ticket();
            self.lock_lnvc(d);
            let result = self.receive_locked(idx, d, buf);
            d.lock.unlock();
            match result? {
                Some(n) => {
                    if waited && self.tracing() {
                        // The delivery that ended the block; its chain is
                        // the context receive_locked just adopted.
                        self.trace_rec(
                            TR_WAKEUP,
                            self.ctx_hop.load(Ordering::Relaxed),
                            self.ctx_trace.load(Ordering::Relaxed),
                            idx,
                            0,
                            n as u32,
                            0,
                        );
                    }
                    return Ok(n);
                }
                None => {
                    let now = Instant::now();
                    if let Some(dl) = deadline {
                        if now >= dl {
                            return Err(MpfError::WouldBlock);
                        }
                    }
                    if !waited {
                        waited = true;
                        if let Some(t) = self.tel() {
                            t.recv_waits.inc();
                            self.lnvc_tel(idx)
                                .recv_waits
                                .fetch_add(1, Ordering::Relaxed);
                            self.fly(EV_RECV_BLOCK, idx, 0);
                        }
                    }
                    // Nap to the sweep cadence, clamped so a near
                    // deadline is missed by microseconds, not 50 ms.
                    let nap = deadline.map_or(RECV_SWEEP_INTERVAL, |dl| {
                        RECV_SWEEP_INTERVAL.min(dl.saturating_duration_since(now))
                    });
                    d.waitq.wait(ticket, Some(nap));
                    // Between naps, look for dead peers so a vanished
                    // sender poisons the conversation instead of leaving
                    // us blocked forever.
                    self.sweep_dead_peers();
                }
            }
        }
    }

    /// Deadline-bounded blocking receive: [`MpfError::TimedOut`] once
    /// `deadline` passes with nothing deliverable (`None` blocks
    /// forever, like [`Self::message_receive`]).
    ///
    /// The expiry check runs *after* each delivery attempt, so a message
    /// racing the deadline is delivered, not timed out.  Distinct from
    /// [`Self::message_receive_timeout`], which keeps its original
    /// [`MpfError::WouldBlock`] contract for existing callers.
    pub fn recv_deadline(
        &self,
        id: IpcLnvcId,
        buf: &mut [u8],
        deadline: Option<Instant>,
    ) -> Result<usize> {
        match self.message_receive_deadline(id, buf, deadline) {
            // The internal loop only reports WouldBlock at expiry, and
            // only when a deadline was supplied.
            Err(MpfError::WouldBlock) => Err(MpfError::TimedOut),
            other => other,
        }
    }

    /// Deadline-bounded blocking send: where [`Self::message_send`]
    /// surfaces pool exhaustion immediately, this retries (sweeping dead
    /// peers between bounded naps so a vanished consumer poisons the
    /// conversation rather than starving us) until the message is
    /// enqueued or `deadline` passes ([`MpfError::TimedOut`]).  `None`
    /// retries until the send succeeds or fails for a non-exhaustion
    /// reason.
    pub fn send_deadline(
        &self,
        id: IpcLnvcId,
        payload: &[u8],
        deadline: Option<Instant>,
    ) -> Result<()> {
        // Short naps: exhaustion clears when a receiver drains, which the
        // sender cannot be notified about (there is no per-pool waitq in
        // the region), so we poll with a bounded sleep.
        const SEND_RETRY_NAP: Duration = Duration::from_millis(2);
        loop {
            match self.message_send(id, payload) {
                Err(MpfError::MessagesExhausted) | Err(MpfError::BlocksExhausted) => {
                    let now = Instant::now();
                    if let Some(dl) = deadline {
                        if now >= dl {
                            return Err(MpfError::TimedOut);
                        }
                        std::thread::sleep(SEND_RETRY_NAP.min(dl - now));
                    } else {
                        std::thread::sleep(SEND_RETRY_NAP);
                    }
                    self.sweep_dead_peers();
                }
                other => return other,
            }
        }
    }

    /// Blocks until one of `ids` has a deliverable message and returns
    /// that conversation's id, or [`MpfError::TimedOut`] once `deadline`
    /// passes.  The wait-set analogue of `mpf-core`'s
    /// `wait_any_deadline`; polls each conversation and naps on the
    /// first one's futex between rounds (any send to any member bumps
    /// its own sequence, so the nap is bounded, not notified — 2 ms
    /// keeps cross-member wake latency tight).  An empty set is
    /// [`MpfError::EmptyWaitSet`]; poisoning of any member surfaces as
    /// its error.
    pub fn wait_any_deadline(
        &self,
        ids: &[IpcLnvcId],
        deadline: Option<Instant>,
    ) -> Result<IpcLnvcId> {
        const MULTI_NAP: Duration = Duration::from_millis(2);
        if ids.is_empty() {
            return Err(MpfError::EmptyWaitSet);
        }
        self.heartbeat();
        let mut last_sweep = Instant::now();
        loop {
            // Tickets for every member before any predicate check, so a
            // send racing the poll bumps a sequence we already hold.
            let ticket = {
                let (_, d0) = self.resolve(ids[0])?;
                d0.waitq.ticket()
            };
            for &id in ids {
                if self.check_receive(id)? {
                    return Ok(id);
                }
            }
            let now = Instant::now();
            if let Some(dl) = deadline {
                if now >= dl {
                    return Err(MpfError::TimedOut);
                }
            }
            let nap = deadline.map_or(MULTI_NAP, |dl| MULTI_NAP.min(dl - now));
            let (_, d0) = self.resolve(ids[0])?;
            d0.waitq.wait(ticket, Some(nap));
            // The liveness sweep is rate-limited to the usual receive
            // cadence — 2 ms naps would otherwise probe heartbeats 25×
            // too often.
            if last_sweep.elapsed() >= RECV_SWEEP_INTERVAL {
                self.sweep_dead_peers();
                last_sweep = Instant::now();
            }
        }
    }

    /// Allocates a message header and a filled block chain for `payload`
    /// from the lock-free pools (sweeping conversation `idx` once for
    /// reclaimable corpses under memory pressure) and preps the
    /// descriptor: everything except the queue link and the publish-time
    /// fields (`seq`, `stamp`, `flags`, `bcast_pending`, `sent_at`).
    fn stage_message(&self, idx: u32, d: &LnvcDesc, payload: &[u8]) -> Result<u32> {
        // Injected pool exhaustion: the pools are fine, but the caller
        // must cope as if they were not.  Nothing was allocated, so the
        // typed error carries no cleanup obligation.
        if faultplane::inject(FaultSite::PoolExhaust) {
            let err = MpfError::MessagesExhausted;
            self.trace_fault(FaultSite::PoolExhaust, &err);
            return Err(err);
        }
        let h = self.header();
        let pop_msg = || h.msg_free.pop(|i| self.msg(i).next.load(Ordering::Acquire));
        let m_idx = match pop_msg() {
            Some(i) => i,
            // Memory pressure: reclaim fully-delivered messages stuck
            // behind a still-claimed queue head, then retry once.
            None => {
                if let Some(t) = self.tel() {
                    t.send_waits.inc();
                    self.fly(EV_SEND_BLOCK, idx, 0);
                }
                let freed = self.sweep_consumed(d);
                self.note_reclaim(idx, freed);
                pop_msg().ok_or(MpfError::MessagesExhausted)?
            }
        };
        let blocks = match self.alloc_blocks(payload) {
            Ok(b) => b,
            Err(first_err) => {
                let retried = if matches!(first_err, MpfError::BlocksExhausted) {
                    if let Some(t) = self.tel() {
                        t.send_waits.inc();
                        self.fly(EV_SEND_BLOCK, idx, 0);
                    }
                    let freed = self.sweep_consumed(d);
                    self.note_reclaim(idx, freed);
                    if freed > 0 {
                        self.alloc_blocks(payload)
                    } else {
                        Err(first_err)
                    }
                } else {
                    Err(first_err)
                };
                match retried {
                    Ok(b) => b,
                    Err(e) => {
                        h.msg_free
                            .push(m_idx, |s, n| self.msg(s).next.store(n, Ordering::Release));
                        return Err(e);
                    }
                }
            }
        };
        let m = self.msg(m_idx);
        m.head_block.store(blocks.0, Ordering::Release);
        m.n_blocks.store(blocks.1, Ordering::Release);
        m.len.store(payload.len() as u32, Ordering::Release);
        m.next.store(NIL, Ordering::Release);
        m.sent_at.store(0, Ordering::Release);
        m.trace.store(0, Ordering::Release);
        m.hop.store(0, Ordering::Release);
        Ok(m_idx)
    }

    // -- batched submission (aio) --------------------------------------

    /// Stages up to `payloads.len()` send descriptors in this process's
    /// in-region submission ring and rings the doorbell **once**.  Each
    /// descriptor's completion token is its index within `payloads`.
    ///
    /// Returns the number staged: pool exhaustion or a full ring stops
    /// the batch early (a partial submit).  An empty batch is `Ok(0)`
    /// with no doorbell; no room for even the first descriptor is
    /// [`MpfError::WouldBlock`] (drain, reap, then resubmit the rest).
    pub fn submit_sends(&self, id: IpcLnvcId, payloads: &[&[u8]]) -> Result<usize> {
        self.heartbeat();
        let max = self.counts.block_payload * self.counts.total_blocks as usize;
        let (idx, d) = self.resolve(id)?;
        if d.poisoned.load(Ordering::Acquire) != 0 {
            return Err(MpfError::PeerDied {
                pid: d.dead_pid.load(Ordering::Acquire),
            });
        }
        if payloads.is_empty() {
            return Ok(0);
        }
        let sq = self.aio_sq(self.me);
        let mut submitted = 0usize;
        for (i, buf) in payloads.iter().enumerate() {
            if sq.is_full() {
                break;
            }
            if buf.len() > max {
                if submitted == 0 {
                    return Err(MpfError::MessageTooLarge {
                        len: buf.len(),
                        max,
                    });
                }
                break;
            }
            let m_idx = match self.stage_message(idx, d, buf) {
                Ok(m) => m,
                // Keep what was already staged; surface the error only
                // when nothing was (callers see partial progress first).
                Err(e) if submitted == 0 => return Err(e),
                Err(_) => break,
            };
            // The descriptor carries everything the drain needs: the
            // message index, the length, and the handle generation (so a
            // recreated conversation fails the run instead of receiving
            // a stranger's backlog).  The causal id is decided here —
            // staging is the send's causal point — and the hop count
            // rides the status field, which carries no meaning until
            // completion.
            let (trace, hop) = self.trace_for_send();
            let pushed = sq.try_push(RingEntry {
                user_data: (u64::from(u32::try_from(i).unwrap_or(u32::MAX)) << 32)
                    | u64::from(id.generation()),
                trace,
                lnvc: idx,
                arg0: m_idx,
                arg1: buf.len() as u32,
                status: hop as i32,
            });
            debug_assert!(pushed, "single-submitter ring had room");
            self.trace_rec(TR_ENQUEUE, hop, trace, idx, 0, buf.len() as u32, i as u32);
            submitted += 1;
        }
        if submitted == 0 {
            return Err(MpfError::WouldBlock);
        }
        sq.ring_doorbell();
        Ok(submitted)
    }

    /// Drains this process's submission ring: links every staged message
    /// under one LNVC-lock hold per run of same-conversation descriptors,
    /// wakes receivers **once** per run, and pushes one completion per
    /// descriptor into the completion ring (doorbell rung once).  Stops
    /// early if the completion ring lacks space, so no completion is ever
    /// dropped.  Returns the number completed.
    pub fn drain_sends(&self) -> usize {
        self.heartbeat();
        let sq = self.aio_sq(self.me);
        let cq = self.aio_cq(self.me);
        // Reap-side space only grows (we are the only CQ producer), so
        // this bound is conservative and conservation holds.
        let budget = cq.capacity() - cq.depth();
        let mut entries = Vec::with_capacity(budget.min(sq.depth()));
        while entries.len() < budget {
            let Some(e) = sq.try_pop() else { break };
            entries.push(e);
        }
        if entries.is_empty() {
            return 0;
        }
        let run_key = |e: &RingEntry| (e.lnvc, e.user_data & u64::from(u32::MAX));
        let mut done = 0usize;
        while done < entries.len() {
            let key = run_key(&entries[done]);
            let run_end = entries[done..]
                .iter()
                .position(|e| run_key(e) != key)
                .map_or(entries.len(), |p| done + p);
            self.drain_run(&entries[done..run_end], cq);
            done = run_end;
        }
        cq.ring_doorbell();
        entries.len()
    }

    /// Completes one run of same-conversation submission descriptors:
    /// a single lock hold, a single receiver wake, one CQ push each.
    fn drain_run(&self, run: &[RingEntry], cq: &AioRing) {
        let id = IpcLnvcId::new((run[0].user_data & u64::from(u32::MAX)) as u32, run[0].lnvc);
        let complete = |e: &RingEntry, status: i32| {
            let pushed = cq.try_push(RingEntry {
                user_data: e.user_data >> 32,
                trace: e.trace,
                lnvc: e.lnvc,
                arg0: 0,
                arg1: e.arg1,
                status,
            });
            debug_assert!(pushed, "drain reserved CQ space");
        };
        let fail_all = |err: MpfError| {
            for e in run {
                self.free_message(e.arg0);
                complete(e, err.status_code());
            }
        };
        let (idx, d) = match self.resolve(id) {
            Ok(found) => found,
            Err(e) => return fail_all(e),
        };
        self.lock_lnvc(d);
        let mut stamps: Vec<u64> = Vec::with_capacity(run.len());
        let result = (|| {
            if d.poisoned.load(Ordering::Acquire) != 0 {
                return Err(MpfError::PeerDied {
                    pid: d.dead_pid.load(Ordering::Acquire),
                });
            }
            if self
                .find_conn(ConnKind::Send, d.send_head.load(Ordering::Acquire), self.me)
                .is_none()
            {
                return Err(MpfError::NotConnected);
            }
            let h = self.header();
            let n_fcfs = d.n_fcfs.load(Ordering::Acquire);
            let n_bcast = d.n_bcast.load(Ordering::Acquire);
            let needs_fcfs = n_fcfs > 0 || (n_fcfs + n_bcast) == 0;
            // Obligations are shared by the whole run — one lock hold,
            // one receiver population.
            let obligations = (u32::from(needs_fcfs) << 16) | n_bcast;
            // One clock read covers every sampled stamp in the run.
            let now = if self.tel_on { now_nanos() } else { 0 };
            let mut bytes = 0u64;
            for e in run {
                let m = self.msg(e.arg0);
                let seq = d.next_seq.fetch_add(1, Ordering::AcqRel);
                let stamp = h.next_stamp.fetch_add(1, Ordering::AcqRel);
                stamps.push(stamp);
                // The staged hop rode the (pre-completion) status field.
                if e.trace != 0 {
                    m.trace.store(e.trace, Ordering::Release);
                    m.hop.store(e.status as u32, Ordering::Release);
                }
                m.seq.store(seq, Ordering::Release);
                m.stamp.store(stamp, Ordering::Release);
                m.bcast_pending.store(n_bcast, Ordering::Release);
                m.flags.store(
                    if needs_fcfs { msg_flags::NEEDS_FCFS } else { 0 },
                    Ordering::Release,
                );
                let sent_at = if self.tel_on && self.sample_latency() {
                    now
                } else {
                    0
                };
                m.sent_at.store(sent_at, Ordering::Release);
                let tail = d.q_tail.load(Ordering::Acquire);
                if tail == NIL {
                    d.q_head.store(e.arg0, Ordering::Release);
                } else {
                    self.msg(tail).next.store(e.arg0, Ordering::Release);
                }
                d.q_tail.store(e.arg0, Ordering::Release);
                d.msg_count.fetch_add(1, Ordering::AcqRel);
                d.last_stamp.store(stamp, Ordering::Release);
                bytes += u64::from(e.arg1);
            }
            if let Some(t) = self.tel() {
                t.sends.add(run.len() as u64);
                t.bytes_in.add(bytes);
                for e in run {
                    t.size_hist.record(u64::from(e.arg1));
                }
                let lt = self.lnvc_tel(idx);
                bump(&lt.sends, run.len() as u64);
                bump(&lt.bytes_in, bytes);
                lt.note_depth(u64::from(d.msg_count.load(Ordering::Acquire)));
            }
            Ok((now, obligations))
        })();
        d.lock.unlock();
        match result {
            Ok((now, obligations)) => {
                // One wake for the whole run — the amortisation the
                // rings buy.
                d.waitq.notify_all();
                if now != 0 {
                    for e in run {
                        self.fly_at(now, EV_SEND, idx, u64::from(e.arg1));
                    }
                }
                for (e, &stamp) in run.iter().zip(&stamps) {
                    self.trace_rec(
                        TR_SEND,
                        e.status as u32,
                        e.trace,
                        idx,
                        stamp,
                        e.arg1,
                        obligations,
                    );
                }
                for e in run {
                    complete(e, 0);
                }
            }
            Err(e) => fail_all(e),
        }
    }

    /// Reaps every pending completion from this process's CQ into `out`;
    /// returns how many were appended.
    pub fn reap_completions(&self, out: &mut Vec<AioCompletion>) -> usize {
        let cq = self.aio_cq(self.me);
        let mut n = 0usize;
        while let Some(e) = cq.try_pop() {
            out.push(AioCompletion {
                user_data: e.user_data,
                trace: e.trace,
                lnvc: e.lnvc,
                len: e.arg1,
                status: e.status,
            });
            n += 1;
        }
        n
    }

    /// Submit + drain + reap in one call: sends the whole batch with one
    /// doorbell, one lock hold, and one receiver wake, returning the
    /// completions (tokens are indices into `payloads`).  May also return
    /// completions left over from earlier partial cycles on this ring.
    pub fn send_batch(&self, id: IpcLnvcId, payloads: &[&[u8]]) -> Result<Vec<AioCompletion>> {
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let submitted = self.submit_sends(id, payloads)?;
        self.drain_sends();
        let mut out = Vec::with_capacity(submitted);
        self.reap_completions(&mut out);
        Ok(out)
    }

    /// Deadline-bounded [`Self::send_batch`]: keeps resubmitting the
    /// unstaged tail (draining and reaping between rounds, so completed
    /// descriptors release ring slots and pool memory) until every
    /// payload is submitted or `deadline` passes.
    ///
    /// On expiry: [`MpfError::TimedOut`] if *nothing* was submitted;
    /// otherwise the completions gathered so far — a partial batch,
    /// exactly the contract [`Self::submit_sends`] already documents.
    /// Completion tokens index into the original `payloads`.
    pub fn send_batch_deadline(
        &self,
        id: IpcLnvcId,
        payloads: &[&[u8]],
        deadline: Option<Instant>,
    ) -> Result<Vec<AioCompletion>> {
        const BATCH_RETRY_NAP: Duration = Duration::from_millis(2);
        if payloads.is_empty() {
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(payloads.len());
        let mut submitted = 0usize;
        loop {
            // Tokens from `submit_sends` index the *slice* we hand it;
            // re-base them to the original batch after each reap.
            let base = submitted as u64;
            match self.submit_sends(id, &payloads[submitted..]) {
                Ok(n) => submitted += n,
                // Ring full or pools dry: drain/reap below frees both,
                // then retry until the deadline says otherwise.
                Err(
                    MpfError::WouldBlock | MpfError::MessagesExhausted | MpfError::BlocksExhausted,
                ) => {}
                Err(e) => {
                    if submitted == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
            self.drain_sends();
            let start = out.len();
            self.reap_completions(&mut out);
            for c in &mut out[start..] {
                c.user_data += base;
            }
            if submitted >= payloads.len() {
                break;
            }
            let now = Instant::now();
            if let Some(dl) = deadline {
                if now >= dl {
                    if submitted == 0 {
                        return Err(MpfError::TimedOut);
                    }
                    break;
                }
                std::thread::sleep(BATCH_RETRY_NAP.min(dl - now));
            } else {
                std::thread::sleep(BATCH_RETRY_NAP);
            }
            self.sweep_dead_peers();
        }
        Ok(out)
    }

    /// Batched blocking receive: waits for traffic (running the liveness
    /// sweep between naps, like [`Self::message_receive`]), then drains
    /// up to `max` messages under one lock hold with one reclamation
    /// pass.  `max == 0` returns an empty batch immediately.
    pub fn recv_batch(&self, id: IpcLnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.heartbeat();
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        let mut waited = false;
        loop {
            let (idx, d) = self.resolve(id)?;
            let ticket = d.waitq.ticket();
            self.lock_lnvc(d);
            let result = self.recv_many_locked(idx, d, max, &mut out);
            d.lock.unlock();
            if result? > 0 {
                return Ok(out);
            }
            if !waited {
                waited = true;
                if let Some(t) = self.tel() {
                    t.recv_waits.inc();
                    self.lnvc_tel(idx)
                        .recv_waits
                        .fetch_add(1, Ordering::Relaxed);
                    self.fly(EV_RECV_BLOCK, idx, 0);
                }
            }
            d.waitq.wait(ticket, Some(RECV_SWEEP_INTERVAL));
            self.sweep_dead_peers();
        }
    }

    /// Deadline-bounded [`Self::recv_batch`]: waits until at least one
    /// message is deliverable, then drains up to `max` under one lock
    /// hold; [`MpfError::TimedOut`] once `deadline` passes with nothing
    /// delivered.  The expiry check runs after each drain attempt, so a
    /// batch racing the deadline is delivered, not timed out.
    pub fn recv_batch_deadline(
        &self,
        id: IpcLnvcId,
        max: usize,
        deadline: Option<Instant>,
    ) -> Result<Vec<Vec<u8>>> {
        self.heartbeat();
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        let mut waited = false;
        loop {
            let (idx, d) = self.resolve(id)?;
            let ticket = d.waitq.ticket();
            self.lock_lnvc(d);
            let result = self.recv_many_locked(idx, d, max, &mut out);
            d.lock.unlock();
            if result? > 0 {
                return Ok(out);
            }
            let now = Instant::now();
            if let Some(dl) = deadline {
                if now >= dl {
                    return Err(MpfError::TimedOut);
                }
            }
            if !waited {
                waited = true;
                if let Some(t) = self.tel() {
                    t.recv_waits.inc();
                    self.lnvc_tel(idx)
                        .recv_waits
                        .fetch_add(1, Ordering::Relaxed);
                    self.fly(EV_RECV_BLOCK, idx, 0);
                }
            }
            let nap = deadline.map_or(RECV_SWEEP_INTERVAL, |dl| {
                RECV_SWEEP_INTERVAL.min(dl.saturating_duration_since(now))
            });
            d.waitq.wait(ticket, Some(nap));
            self.sweep_dead_peers();
        }
    }

    /// Non-blocking [`Self::recv_batch`]: drains whatever is deliverable
    /// right now (possibly nothing).
    pub fn try_recv_batch(&self, id: IpcLnvcId, max: usize) -> Result<Vec<Vec<u8>>> {
        self.heartbeat();
        let mut out = Vec::new();
        if max == 0 {
            return Ok(out);
        }
        let (idx, d) = self.resolve(id)?;
        self.lock_lnvc(d);
        let result = self.recv_many_locked(idx, d, max, &mut out);
        d.lock.unlock();
        result?;
        Ok(out)
    }

    /// Collects up to `max` deliverable messages into `out` and runs one
    /// prefix reclamation; caller holds the LNVC lock.  Telemetry for the
    /// whole batch shares a single clock read.
    fn recv_many_locked(
        &self,
        idx: u32,
        d: &LnvcDesc,
        max: usize,
        out: &mut Vec<Vec<u8>>,
    ) -> Result<usize> {
        self.poison_check(d)?;
        let conn = self
            .find_conn(ConnKind::Recv, d.recv_head.load(Ordering::Acquire), self.me)
            .ok_or(MpfError::NotConnected)?;
        let r = self.recv(conn);
        let bcast = r.protocol.load(Ordering::Acquire) == proto_code(Protocol::Broadcast);
        // One clock read covers every trace record, latency sample, and
        // flight record this batch produces.
        let now = if self.tel_on || self.tracing() {
            now_nanos()
        } else {
            0
        };
        let mut received = 0usize;
        let mut bytes = 0u64;
        let mut sampled: Vec<u64> = Vec::new();
        let mut last_chain = (0u64, 0u32);
        while received < max {
            let Some(m_idx) = self.next_deliverable(d, conn) else {
                break;
            };
            let m = self.msg(m_idx);
            let len = m.len.load(Ordering::Acquire) as usize;
            let sent_at = m.sent_at.load(Ordering::Acquire);
            let stamp = m.stamp.load(Ordering::Acquire);
            let trace = m.trace.load(Ordering::Acquire);
            let hop = m.hop.load(Ordering::Acquire);
            let mut buf = vec![0u8; len];
            self.gather(m, &mut buf);
            if bcast {
                r.cursor
                    .store(m.seq.load(Ordering::Acquire) + 1, Ordering::Release);
                m.bcast_pending.fetch_sub(1, Ordering::AcqRel);
            } else {
                m.flags.fetch_or(msg_flags::FCFS_TAKEN, Ordering::AcqRel);
            }
            // Delivery is claimed; record it before the batch's
            // reclamation pass can append this message's TR_RECLAIM.
            self.trace_rec_at(
                now,
                if bcast { TR_RECV_B } else { TR_RECV },
                hop,
                trace,
                idx,
                stamp,
                len as u32,
                0,
            );
            last_chain = (trace, hop);
            out.push(buf);
            received += 1;
            bytes += len as u64;
            if sent_at != 0 {
                sampled.push(sent_at);
            }
        }
        if received == 0 {
            return Ok(0);
        }
        // The last delivery of the batch becomes this process's context.
        self.adopt_trace(last_chain.0, last_chain.1);
        let freed = self.reclaim_prefix(d, now);
        if let Some(t) = self.tel() {
            let lt = self.lnvc_tel(idx);
            if freed > 0 {
                t.reclaims.add(freed as u64);
                bump(&lt.reclaims, freed as u64);
                self.fly_at(now, EV_RECLAIM, idx, freed as u64);
            }
            t.receives.add(received as u64);
            t.bytes_out.add(bytes);
            bump(&lt.receives, received as u64);
            bump(&lt.bytes_out, bytes);
            for sent_at in sampled {
                let lat = now.saturating_sub(sent_at);
                t.latency_hist.record(lat);
                lt.latency.record_locked(lat);
            }
            self.fly_at(now, EV_RECV, idx, bytes);
        }
        Ok(received)
    }

    /// Counters of this process's submission/completion ring pair.
    pub fn aio_stats(&self) -> AioStats {
        AioStats::from_rings(self.aio_sq(self.me), self.aio_cq(self.me))
    }

    // -- reactor support ------------------------------------------------

    /// Non-blocking send for async callers: `Ok(false)` when the shared
    /// pools are exhausted (retry after a reclaim), errors otherwise.
    pub fn try_message_send(&self, id: IpcLnvcId, payload: &[u8]) -> Result<bool> {
        match self.message_send(id, payload) {
            Ok(()) => Ok(true),
            Err(MpfError::MessagesExhausted | MpfError::BlocksExhausted) => Ok(false),
            Err(e) => Err(e),
        }
    }

    /// Non-blocking receive into a fresh `Vec`; `Ok(None)` when nothing
    /// is deliverable.
    pub fn try_message_receive_vec(&self, id: IpcLnvcId) -> Result<Option<Vec<u8>>> {
        self.heartbeat();
        let (idx, d) = self.resolve(id)?;
        self.lock_lnvc(d);
        let mut out = Vec::new();
        let result = self.recv_many_locked(idx, d, 1, &mut out);
        d.lock.unlock();
        result?;
        Ok(out.pop())
    }

    /// Current wait-queue ticket for `id`'s conversation.  Take it
    /// *before* a failed try-operation: if the sequence has moved past it
    /// by the next check, traffic arrived in between (the lost-wakeup
    /// guard the blocking primitives use, exposed for the async reactor).
    pub fn recv_signal_ticket(&self, id: IpcLnvcId) -> Result<u32> {
        Ok(self.resolve(id)?.1.waitq.ticket())
    }

    /// Waits (bounded by `timeout`) for `id`'s wait queue to move past
    /// `ticket`.  Returns `true` when the signal fired — or when the
    /// conversation no longer resolves, so the caller re-polls and
    /// surfaces the error instead of sleeping on a corpse.
    pub fn wait_recv_signal(&self, id: IpcLnvcId, ticket: u32, timeout: Duration) -> bool {
        match self.resolve(id) {
            Ok((_, d)) => d.waitq.wait(ticket, Some(timeout)),
            Err(_) => true,
        }
    }

    // -- receive internals ---------------------------------------------

    fn poison_check(&self, d: &LnvcDesc) -> Result<()> {
        if d.poisoned.load(Ordering::Acquire) != 0 {
            return Err(MpfError::PeerDied {
                pid: d.dead_pid.load(Ordering::Acquire),
            });
        }
        Ok(())
    }

    /// The scan both receive flavours share; caller holds the LNVC lock.
    fn receive_locked(&self, idx: u32, d: &LnvcDesc, buf: &mut [u8]) -> Result<Option<usize>> {
        self.poison_check(d)?;
        let conn = self
            .find_conn(ConnKind::Recv, d.recv_head.load(Ordering::Acquire), self.me)
            .ok_or(MpfError::NotConnected)?;
        let Some(m_idx) = self.next_deliverable(d, conn) else {
            return Ok(None);
        };
        let m = self.msg(m_idx);
        let len = m.len.load(Ordering::Acquire) as usize;
        if buf.len() < len {
            // Message stays queued — the caller may retry with a bigger
            // buffer (paper: the receiver learns the needed size).
            return Err(MpfError::BufferTooSmall { needed: len });
        }
        // Read before reclaim may free the descriptor back to the pool.
        let sent_at = m.sent_at.load(Ordering::Acquire);
        let stamp = m.stamp.load(Ordering::Acquire);
        let trace = m.trace.load(Ordering::Acquire);
        let hop = m.hop.load(Ordering::Acquire);
        self.gather(m, &mut buf[..len]);
        let r = self.recv(conn);
        let bcast = r.protocol.load(Ordering::Acquire) == proto_code(Protocol::Broadcast);
        if bcast {
            r.cursor
                .store(m.seq.load(Ordering::Acquire) + 1, Ordering::Release);
            m.bcast_pending.fetch_sub(1, Ordering::AcqRel);
        } else {
            m.flags.fetch_or(msg_flags::FCFS_TAKEN, Ordering::AcqRel);
        }
        // One clock read covers the trace records (delivery + reclaim),
        // the latency sample, and both flight records of this receive.
        let now = if self.tel_on || trace != 0 {
            now_nanos()
        } else {
            0
        };
        // Delivery is claimed; record it before the reclamation sweep can
        // append this message's TR_RECLAIM, so ring order matches logic.
        self.adopt_trace(trace, hop);
        self.trace_rec_at(
            now,
            if bcast { TR_RECV_B } else { TR_RECV },
            hop,
            trace,
            idx,
            stamp,
            len as u32,
            0,
        );
        let freed = self.reclaim_prefix(d, now);
        if let Some(t) = self.tel() {
            let lt = self.lnvc_tel(idx);
            if freed > 0 {
                t.reclaims.add(freed as u64);
                bump(&lt.reclaims, freed as u64);
                self.fly_at(now, EV_RECLAIM, idx, freed as u64);
            }
            t.receives.inc();
            t.bytes_out.add(len as u64);
            bump(&lt.receives, 1);
            bump(&lt.bytes_out, len as u64);
            if sent_at != 0 {
                let lat = now.saturating_sub(sent_at);
                t.latency_hist.record(lat);
                lt.latency.record_locked(lat);
            }
            self.fly_at(now, EV_RECV, idx, len as u64);
        }
        Ok(Some(len))
    }

    /// First queued message deliverable to connection `conn`.
    fn next_deliverable(&self, d: &LnvcDesc, conn: u32) -> Option<u32> {
        let r = self.recv(conn);
        let bcast = r.protocol.load(Ordering::Acquire) == proto_code(Protocol::Broadcast);
        let cursor = r.cursor.load(Ordering::Acquire);
        let mut cur = d.q_head.load(Ordering::Acquire);
        while cur != NIL {
            let m = self.msg(cur);
            if bcast {
                if m.seq.load(Ordering::Acquire) >= cursor {
                    return Some(cur);
                }
            } else {
                let flags = m.flags.load(Ordering::Acquire);
                if flags & msg_flags::NEEDS_FCFS != 0 && flags & msg_flags::FCFS_TAKEN == 0 {
                    return Some(cur);
                }
            }
            cur = m.next.load(Ordering::Acquire);
        }
        None
    }

    /// Pops fully-delivered messages off the queue head and frees them;
    /// returns how many were freed.  `tstamp` (0 = read the clock) dates
    /// the freed messages' trace records — the receive hot paths pass the
    /// clock read they already did.
    fn reclaim_prefix(&self, d: &LnvcDesc, tstamp: u64) -> u32 {
        let mut freed = 0;
        loop {
            let head = d.q_head.load(Ordering::Acquire);
            if head == NIL {
                return freed;
            }
            let m = self.msg(head);
            let flags = m.flags.load(Ordering::Acquire);
            let fcfs_done =
                flags & msg_flags::NEEDS_FCFS == 0 || flags & msg_flags::FCFS_TAKEN != 0;
            let bcast_done = m.bcast_pending.load(Ordering::Acquire) == 0;
            if !(fcfs_done && bcast_done) {
                return freed;
            }
            let next = m.next.load(Ordering::Acquire);
            d.q_head.store(next, Ordering::Release);
            if next == NIL {
                d.q_tail.store(NIL, Ordering::Release);
            }
            d.msg_count.fetch_sub(1, Ordering::AcqRel);
            self.free_message_at(head, tstamp);
            freed += 1;
        }
    }

    /// Clears the FCFS obligation on every still-owed queued message.
    ///
    /// Called (holding the LNVC lock) when the connected-receiver
    /// population changes such that the obligation can never be satisfied:
    /// the last FCFS receiver leaves while BROADCAST receivers keep the
    /// conversation alive, or the first receiver ever to join is
    /// BROADCAST (its cursor skips the backlog).  See DESIGN.md,
    /// "Obligation re-evaluation".
    fn clear_fcfs_obligations(&self, d: &LnvcDesc) {
        let mut cur = d.q_head.load(Ordering::Acquire);
        while cur != NIL {
            let m = self.msg(cur);
            let flags = m.flags.load(Ordering::Acquire);
            if flags & msg_flags::NEEDS_FCFS != 0 && flags & msg_flags::FCFS_TAKEN == 0 {
                m.flags.fetch_and(!msg_flags::NEEDS_FCFS, Ordering::AcqRel);
            }
            cur = m.next.load(Ordering::Acquire);
        }
    }

    /// Full-queue variant of [`Self::reclaim_prefix`]: frees
    /// fully-delivered messages anywhere in the queue, relinking around
    /// them.  Interior messages become reclaimable when an FCFS receiver
    /// takes a message parked behind a broadcast-claimed head or when
    /// obligations are cleared; closes and memory-pressure sweeps use
    /// this, the per-receive hot path keeps the cheap prefix pop.
    fn reclaim_consumed(&self, d: &LnvcDesc) -> u32 {
        let mut freed = 0;
        let mut prev = NIL;
        let mut cur = d.q_head.load(Ordering::Acquire);
        while cur != NIL {
            let m = self.msg(cur);
            let next = m.next.load(Ordering::Acquire);
            let flags = m.flags.load(Ordering::Acquire);
            let fcfs_done =
                flags & msg_flags::NEEDS_FCFS == 0 || flags & msg_flags::FCFS_TAKEN != 0;
            if fcfs_done && m.bcast_pending.load(Ordering::Acquire) == 0 {
                if prev == NIL {
                    d.q_head.store(next, Ordering::Release);
                } else {
                    self.msg(prev).next.store(next, Ordering::Release);
                }
                if next == NIL {
                    d.q_tail.store(prev, Ordering::Release);
                }
                d.msg_count.fetch_sub(1, Ordering::AcqRel);
                self.free_message(cur);
                freed += 1;
            } else {
                prev = cur;
            }
            cur = next;
        }
        freed
    }

    /// Best-effort sweep under memory pressure: a sender that finds the
    /// pools exhausted reclaims fully-delivered messages stuck behind a
    /// still-claimed queue head before giving up.  Takes the LNVC lock.
    fn sweep_consumed(&self, d: &LnvcDesc) -> u32 {
        self.lock_lnvc(d);
        let freed = if d.poisoned.load(Ordering::Acquire) == 0 {
            self.reclaim_consumed(d)
        } else {
            0
        };
        d.lock.unlock();
        freed
    }

    /// Releases a departing/dead BROADCAST receiver's claims from
    /// `cursor` onward.
    fn release_bcast_claims(&self, d: &LnvcDesc, cursor: u32) {
        let mut cur = d.q_head.load(Ordering::Acquire);
        while cur != NIL {
            let m = self.msg(cur);
            if m.seq.load(Ordering::Acquire) >= cursor
                && m.bcast_pending.load(Ordering::Acquire) > 0
            {
                m.bcast_pending.fetch_sub(1, Ordering::AcqRel);
            }
            cur = m.next.load(Ordering::Acquire);
        }
    }

    // -- allocation helpers --------------------------------------------

    /// Allocates and fills a block chain; returns (head, count).
    fn alloc_blocks(&self, payload: &[u8]) -> Result<(u32, u32)> {
        let bp = self.counts.block_payload;
        let n_needed = payload.len().div_ceil(bp) as u32;
        let h = self.header();
        let mut head = NIL;
        let mut tail = NIL;
        for _ in 0..n_needed {
            match h
                .block_free
                .pop(|i| self.block_link(i).load(Ordering::Acquire))
            {
                Some(b) => {
                    self.block_link(b).store(NIL, Ordering::Release);
                    if head == NIL {
                        head = b;
                    } else {
                        self.block_link(tail).store(b, Ordering::Release);
                    }
                    tail = b;
                }
                None => {
                    self.free_block_chain(head);
                    return Err(MpfError::BlocksExhausted);
                }
            }
        }
        // Scatter the payload.
        let mut cur = head;
        for chunk in payload.chunks(bp) {
            unsafe {
                std::ptr::copy_nonoverlapping(chunk.as_ptr(), self.payload_ptr(cur), chunk.len());
            }
            cur = self.block_link(cur).load(Ordering::Acquire);
        }
        Ok((head, n_needed))
    }

    /// Gathers a message's block chain into `out` (`out.len()` = msg len).
    fn gather(&self, m: &MsgDesc, out: &mut [u8]) {
        let bp = self.counts.block_payload;
        let mut cur = m.head_block.load(Ordering::Acquire);
        for chunk in out.chunks_mut(bp) {
            debug_assert_ne!(cur, NIL);
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.payload_ptr(cur),
                    chunk.as_mut_ptr(),
                    chunk.len(),
                );
            }
            cur = self.block_link(cur).load(Ordering::Acquire);
        }
    }

    fn free_block_chain(&self, head: u32) {
        let h = self.header();
        let mut cur = head;
        while cur != NIL {
            let next = self.block_link(cur).load(Ordering::Acquire);
            h.block_free
                .push(cur, |s, n| self.block_link(s).store(n, Ordering::Release));
            cur = next;
        }
    }

    fn free_message(&self, m_idx: u32) {
        self.free_message_at(m_idx, 0);
    }

    fn free_message_at(&self, m_idx: u32, tstamp: u64) {
        let m = self.msg(m_idx);
        // Reclaim is chain-attributed but not conversation-attributed
        // (the descriptor may outlive its LNVC); clearing the id keeps a
        // recycled descriptor from logging a second reclaim.
        let trace = m.trace.load(Ordering::Acquire);
        if trace != 0 {
            self.trace_rec_at(
                tstamp,
                TR_RECLAIM,
                m.hop.load(Ordering::Acquire),
                trace,
                NIL,
                m.stamp.load(Ordering::Acquire),
                m_idx,
                0,
            );
            m.trace.store(0, Ordering::Release);
        }
        self.free_block_chain(m.head_block.load(Ordering::Acquire));
        m.head_block.store(NIL, Ordering::Release);
        self.header()
            .msg_free
            .push(m_idx, |s, n| self.msg(s).next.store(n, Ordering::Release));
    }

    // -- conversation lifecycle (registry lock held) --------------------

    /// Runs `f` holding the registry lock (lock order: registry → LNVC).
    fn with_registry<T>(&self, f: impl FnOnce() -> Result<T>) -> Result<T> {
        let h = self.header();
        let (_, contended) = h
            .registry_lock
            .lock_traced(self.lock_owner(), |o| self.holder_alive(o));
        if contended {
            if let Some(t) = self.tel() {
                t.lock_contended.inc();
            }
        }
        // Registry mutations are single-word writes; a broken dead
        // holder cannot tear them, so a poisoned registry stays usable.
        let out = f();
        h.registry_lock.unlock();
        out
    }

    /// Name lookup, creating the conversation when absent.  Returns
    /// `(descriptor index, created_now)`.  Caller holds the registry lock.
    fn find_or_create(&self, name: &str) -> Result<(u32, bool)> {
        let bytes = name.as_bytes();
        let mut padded = [0u8; 32];
        padded[..bytes.len()].copy_from_slice(bytes);
        let mut free_entry = NIL;
        for i in 0..self.counts.max_lnvcs {
            let e = self.reg_entry(i);
            if e.used.load(Ordering::Acquire) == 1 {
                if e.get_name() == padded {
                    return Ok((e.lnvc.load(Ordering::Acquire), false));
                }
            } else if free_entry == NIL {
                free_entry = i;
            }
        }
        if free_entry == NIL {
            return Err(MpfError::LnvcsExhausted);
        }
        // Find a free descriptor slot.
        for idx in 0..self.counts.max_lnvcs {
            let d = self.lnvc(idx);
            if d.active.load(Ordering::Acquire) == 0 {
                // (Re)activate: pristine lock, fresh generation, empty
                // queue and lists.
                d.lock.reset();
                d.generation.fetch_add(1, Ordering::AcqRel);
                d.registry_idx.store(free_entry, Ordering::Release);
                d.q_head.store(NIL, Ordering::Release);
                d.q_tail.store(NIL, Ordering::Release);
                d.msg_count.store(0, Ordering::Release);
                d.send_head.store(NIL, Ordering::Release);
                d.recv_head.store(NIL, Ordering::Release);
                d.n_senders.store(0, Ordering::Release);
                d.n_fcfs.store(0, Ordering::Release);
                d.n_bcast.store(0, Ordering::Release);
                d.next_seq.store(0, Ordering::Release);
                d.poisoned.store(0, Ordering::Release);
                d.dead_pid.store(0, Ordering::Release);
                d.active.store(1, Ordering::Release);
                let e = self.reg_entry(free_entry);
                e.set_name(bytes);
                e.lnvc.store(idx, Ordering::Release);
                e.used.store(1, Ordering::Release);
                if let Some(t) = self.tel() {
                    t.lnvcs_created.inc();
                    // A recycled slot must not inherit its predecessor's
                    // numbers.
                    self.lnvc_tel(idx).reset();
                }
                return Ok((idx, true));
            }
        }
        Err(MpfError::LnvcsExhausted)
    }

    /// Rolls back a just-created conversation whose first open failed.
    /// Caller holds the registry lock and the LNVC lock.
    fn deactivate(&self, idx: u32) {
        let d = self.lnvc(idx);
        let e = self.reg_entry(d.registry_idx.load(Ordering::Acquire));
        e.used.store(0, Ordering::Release);
        d.active.store(0, Ordering::Release);
        if let Some(t) = self.tel() {
            t.lnvcs_deleted.inc();
        }
    }

    /// Deletes a conversation whose last connection just closed: frees
    /// queued messages, releases the name.  Caller holds both locks.
    fn delete_conversation(&self, idx: u32, d: &LnvcDesc) {
        let mut cur = d.q_head.load(Ordering::Acquire);
        while cur != NIL {
            let next = self.msg(cur).next.load(Ordering::Acquire);
            self.free_message(cur);
            cur = next;
        }
        d.q_head.store(NIL, Ordering::Release);
        d.q_tail.store(NIL, Ordering::Release);
        d.msg_count.store(0, Ordering::Release);
        self.deactivate(idx);
        // Wake anything parked on the dead conversation; their next
        // resolve() fails with UnknownLnvc.
        d.waitq.notify_all();
    }

    fn resolve(&self, id: IpcLnvcId) -> Result<(u32, &LnvcDesc)> {
        let idx = id.index();
        if idx >= self.counts.max_lnvcs {
            return Err(MpfError::UnknownLnvc);
        }
        let d = self.lnvc(idx);
        if d.active.load(Ordering::Acquire) != 1
            || d.generation.load(Ordering::Acquire) != id.generation()
        {
            return Err(MpfError::UnknownLnvc);
        }
        Ok((idx, d))
    }

    fn conn_pid(&self, kind: ConnKind, i: u32) -> u32 {
        match kind {
            ConnKind::Send => self.send(i).pid.load(Ordering::Acquire),
            ConnKind::Recv => self.recv(i).pid.load(Ordering::Acquire),
        }
    }

    fn conn_next(&self, kind: ConnKind, i: u32) -> u32 {
        match kind {
            ConnKind::Send => self.send(i).next.load(Ordering::Acquire),
            ConnKind::Recv => self.recv(i).next.load(Ordering::Acquire),
        }
    }

    fn set_conn_next(&self, kind: ConnKind, i: u32, v: u32) {
        match kind {
            ConnKind::Send => self.send(i).next.store(v, Ordering::Release),
            ConnKind::Recv => self.recv(i).next.store(v, Ordering::Release),
        }
    }

    /// Finds `pid`'s connection in an index-linked list.
    fn find_conn(&self, kind: ConnKind, head: u32, pid: u32) -> Option<u32> {
        let mut cur = head;
        while cur != NIL {
            if self.conn_pid(kind, cur) == pid {
                return Some(cur);
            }
            cur = self.conn_next(kind, cur);
        }
        None
    }

    /// Unlinks `pid`'s connection from an index-linked list, returning it.
    fn unlink_conn(&self, kind: ConnKind, head: &AtomicU32, pid: u32) -> Option<u32> {
        let mut prev = NIL;
        let mut cur = head.load(Ordering::Acquire);
        while cur != NIL {
            let next = self.conn_next(kind, cur);
            if self.conn_pid(kind, cur) == pid {
                if prev == NIL {
                    head.store(next, Ordering::Release);
                } else {
                    self.set_conn_next(kind, prev, next);
                }
                return Some(cur);
            }
            prev = cur;
            cur = next;
        }
        None
    }

    // -- dead-peer robustness ------------------------------------------

    /// Scans the heartbeat table for attached processes whose OS process
    /// no longer exists; each corpse's connections are swept and the
    /// conversations it touched are poisoned.  Returns the number of
    /// newly-found dead peers.  Every blocked receive runs this
    /// periodically; it is also safe to call at any time.
    pub fn sweep_dead_peers(&self) -> u32 {
        let mut found = 0;
        for p in 0..self.counts.max_processes {
            if p == self.me {
                continue;
            }
            let s = self.slot(p);
            if s.state.load(Ordering::Acquire) != slot_state::ATTACHED {
                continue;
            }
            let os_pid = s.os_pid.load(Ordering::Acquire);
            if mpf_shm::futex::process_alive(os_pid) {
                continue;
            }
            // CAS so exactly one surviving process performs the sweep.
            if s.state
                .compare_exchange(
                    slot_state::ATTACHED,
                    slot_state::DEAD,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .is_ok()
            {
                found += 1;
                if let Some(t) = self.tel() {
                    t.peers_died.inc();
                    self.fly(EV_SWEEP_DEAD, NIL, os_pid as u64);
                }
                // The corpse may have died between submit and drain:
                // its staged messages are pool allocations linked to no
                // queue, visible only through its submission ring.  The
                // CAS above made us the ring's sole consumer.
                self.reclaim_aio_of(p);
                // The sweep may delete a conversation outright (when the
                // corpse held its only connection), which mutates the
                // name registry — so it runs under the registry lock,
                // registry → LNVC order, same as open/close.  Corpses
                // are rare; the lock hold is not on any fast path.
                let _ = self.with_registry(|| {
                    self.sweep_connections_of(p);
                    Ok(())
                });
            }
        }
        if found > 0 {
            if let Some(t) = self.tel() {
                t.sweeps.inc();
            }
            self.header().sweep_epoch.fetch_add(1, Ordering::AcqRel);
        }
        found
    }

    /// Removes every connection the dead process held and poisons the
    /// conversations it was party to.  A conversation whose **only**
    /// connection belonged to the corpse is deleted instead: no survivor
    /// is connected to observe the poison or to close it away, so
    /// poisoning would leak the descriptor and name until region
    /// teardown (a SIGKILLed client's private reply LNVC is the
    /// canonical case).  Caller holds the registry lock.
    fn sweep_connections_of(&self, dead: u32) {
        for idx in 0..self.counts.max_lnvcs {
            let d = self.lnvc(idx);
            if d.active.load(Ordering::Acquire) != 1 {
                continue;
            }
            // The oracle knows `dead`'s slot is no longer ATTACHED, so a
            // lock the corpse still holds is broken (and poisons) here
            // rather than blocking the sweep.
            self.lock_lnvc(d);
            let mut touched = false;
            if let Some(conn) = self.unlink_conn(ConnKind::Send, &d.send_head, dead) {
                self.header()
                    .send_free
                    .push(conn, |s, n| self.send(s).next.store(n, Ordering::Release));
                d.n_senders.fetch_sub(1, Ordering::AcqRel);
                touched = true;
            }
            if let Some(conn) = self.unlink_conn(ConnKind::Recv, &d.recv_head, dead) {
                let r = self.recv(conn);
                let protocol = r.protocol.load(Ordering::Acquire);
                let cursor = r.cursor.load(Ordering::Acquire);
                self.header()
                    .recv_free
                    .push(conn, |s, n| self.recv(s).next.store(n, Ordering::Release));
                if protocol == proto_code(Protocol::Broadcast) {
                    d.n_bcast.fetch_sub(1, Ordering::AcqRel);
                    self.release_bcast_claims(d, cursor);
                } else {
                    d.n_fcfs.fetch_sub(1, Ordering::AcqRel);
                    // Same re-evaluation as close_receive: sweeping a dead
                    // FCFS receiver must not strand its obligations.
                    if d.n_fcfs.load(Ordering::Acquire) == 0
                        && d.n_bcast.load(Ordering::Acquire) > 0
                    {
                        self.clear_fcfs_obligations(d);
                    }
                }
                let freed = self.reclaim_consumed(d);
                self.note_reclaim(idx, freed);
                touched = true;
            }
            let orphaned = touched && d.total_connections() == 0;
            if orphaned {
                // The corpse held the only connection: delete rather
                // than poison (frees the queue, releases the name,
                // wakes any parker — see the method doc).
                self.delete_conversation(idx, d);
            } else if touched {
                d.dead_pid.store(dead, Ordering::Release);
                if d.poisoned.swap(1, Ordering::AcqRel) == 0 {
                    self.fly(EV_POISONED, idx, dead as u64);
                    self.trace_pop(TR_POISON, idx, dead);
                }
                // Nobody can drain a poisoned conversation (every
                // receive now reports `PeerDied`), so its queued
                // messages would leak pool slots for the region's
                // lifetime: free the whole queue.
                let mut cur = d.q_head.load(Ordering::Acquire);
                while cur != NIL {
                    let next = self.msg(cur).next.load(Ordering::Acquire);
                    self.free_message(cur);
                    cur = next;
                }
                d.q_head.store(NIL, Ordering::Release);
                d.q_tail.store(NIL, Ordering::Release);
                d.msg_count.store(0, Ordering::Release);
            }
            d.lock.unlock();
            if touched && !orphaned {
                // Unblock survivors; they will observe the poison.
                d.waitq.notify_all();
            }
        }
    }

    // -- telemetry ------------------------------------------------------

    /// Whether the creator enabled telemetry recording for this region.
    pub fn telemetry_enabled(&self) -> bool {
        self.tel_on
    }

    /// Snapshot of the facility-wide in-region counters and histograms
    /// (sum of every process slot's shard).
    pub fn telemetry_snapshot(&self) -> TelSnapshot {
        let mut sum = TelSnapshot::default();
        for p in 0..self.counts.max_processes {
            sum.absorb(&self.fac_tel(p).snapshot());
        }
        sum
    }

    /// Snapshot of one conversation's telemetry.
    pub fn lnvc_telemetry(&self, id: IpcLnvcId) -> Result<LnvcTelSnapshot> {
        let (idx, d) = self.resolve(id)?;
        self.lock_lnvc(d);
        let snap = self.lnvc_tel(idx).snapshot();
        d.lock.unlock();
        Ok(snap)
    }

    /// Corpse census: messages that are fully delivered but still queued
    /// (and the blocks they pin), summed over all active conversations.
    /// Nonzero means a sweep (`close`, memory-pressure, or dead-peer)
    /// would free memory right now.
    pub fn reclaimable(&self) -> Reclaimable {
        let mut out = Reclaimable::default();
        for idx in 0..self.counts.max_lnvcs {
            let d = self.lnvc(idx);
            if d.active.load(Ordering::Acquire) != 1 {
                continue;
            }
            self.lock_lnvc(d);
            if d.active.load(Ordering::Acquire) == 1 {
                let mut cur = d.q_head.load(Ordering::Acquire);
                while cur != NIL {
                    let m = self.msg(cur);
                    let flags = m.flags.load(Ordering::Acquire);
                    let fcfs_done =
                        flags & msg_flags::NEEDS_FCFS == 0 || flags & msg_flags::FCFS_TAKEN != 0;
                    if fcfs_done && m.bcast_pending.load(Ordering::Acquire) == 0 {
                        out.messages += 1;
                        out.blocks += m.n_blocks.load(Ordering::Acquire) as u64;
                    }
                    cur = m.next.load(Ordering::Acquire);
                }
            }
            d.lock.unlock();
        }
        out
    }

    /// The tail of a process's flight ring, oldest first.  Readable for
    /// any pid — including a dead one, which is the point.
    pub fn flight_events(&self, pid: u32) -> Vec<FlightEvent> {
        if pid >= self.counts.max_processes {
            return Vec::new();
        }
        self.ring(pid).snapshot()
    }

    /// Whether causal tracing is enabled for this region (the creator's
    /// choice, echoed in the header so every attacher agrees).
    pub fn trace_enabled(&self) -> bool {
        self.tracing()
    }

    /// The surviving contents of a process's causal trace ring, oldest
    /// first (the `mpf-trace` crate reconstructs chains from these).
    /// Readable for any pid — including a dead one, which is the point.
    pub fn trace_events(&self, pid: u32) -> Vec<TraceEvent> {
        if pid >= self.counts.max_processes {
            return Vec::new();
        }
        self.trace_ring(pid).snapshot()
    }

    /// Occupancy of a process's trace ring: `(records ever written,
    /// chains skipped by sampling)`; `None` for an out-of-range pid.
    pub fn trace_ring_stats(&self, pid: u32) -> Option<(u64, u64)> {
        (pid < self.counts.max_processes).then(|| {
            let r = self.trace_ring(pid);
            (r.head(), r.skipped())
        })
    }

    // -- diagnostics ----------------------------------------------------

    /// Number of active conversations.
    pub fn live_lnvcs(&self) -> usize {
        (0..self.counts.max_lnvcs)
            .filter(|&i| self.lnvc(i).active.load(Ordering::Acquire) == 1)
            .count()
    }

    /// Free payload blocks (walks the free list; quiescent diagnostic).
    pub fn free_blocks(&self) -> u32 {
        let mut n = 0;
        let mut cur = self.header().block_free.head();
        while cur != NIL && n < self.counts.total_blocks {
            n += 1;
            cur = self.block_link(cur).load(Ordering::Acquire);
        }
        n
    }

    /// Whether a given MPF pid's slot is currently attached and alive.
    pub fn peer_alive(&self, pid: u32) -> bool {
        pid < self.counts.max_processes && self.slot(pid).owner_alive()
    }

    /// Whether a conversation named `name` exists right now.  A lock-free
    /// registry probe and a hint only: the answer can be stale by the
    /// time the caller acts on it.  Service layers poll this to discover
    /// rendezvous points (e.g. an epoch-suffixed request queue) without
    /// creating them as a side effect the way `open_*` would.
    pub fn lnvc_exists(&self, name: &str) -> bool {
        let bytes = name.as_bytes();
        if bytes.is_empty() || bytes.len() > 32 {
            return false;
        }
        let mut padded = [0u8; 32];
        padded[..bytes.len()].copy_from_slice(bytes);
        (0..self.counts.max_lnvcs).any(|i| {
            let e = self.reg_entry(i);
            e.used.load(Ordering::Acquire) == 1 && e.get_name() == padded
        })
    }

    /// Queued (undelivered or partially-delivered) message count of a
    /// conversation.  Racy diagnostic: drain protocols use it to decide
    /// whether a queue has quiesced after pausing intake.
    pub fn queue_depth(&self, id: IpcLnvcId) -> Result<u32> {
        let (_, d) = self.resolve(id)?;
        Ok(d.msg_count.load(Ordering::Acquire))
    }

    /// Whether a conversation has been poisoned by a dead peer (sticky
    /// until the conversation is deleted and its name recycled).
    pub fn lnvc_poisoned(&self, id: IpcLnvcId) -> Result<bool> {
        let (_, d) = self.resolve(id)?;
        Ok(d.poisoned.load(Ordering::Acquire) != 0)
    }

    /// Seizes the LNVC's in-region lock and never releases it — a test
    /// hook for dead-lock-holder scenarios (the seizing process is then
    /// killed, and survivors must break the lock).
    #[doc(hidden)]
    pub fn debug_seize_lnvc_lock(&self, id: IpcLnvcId) -> Result<()> {
        let (_, d) = self.resolve(id)?;
        self.lock_lnvc(d);
        Ok(())
    }

    /// Releases a lock taken by [`Self::debug_seize_lnvc_lock`] — the
    /// survival path of modeled-death scenarios, where the would-be
    /// victim outlives the schedule and must hand the lock back.
    #[doc(hidden)]
    pub fn debug_release_lnvc_lock(&self, id: IpcLnvcId) -> Result<()> {
        let (_, d) = self.resolve(id)?;
        d.lock.unlock();
        Ok(())
    }

    /// Simulates this process's sudden death for tests: the slot stays
    /// ATTACHED but its `os_pid` is pointed at a pid that cannot exist,
    /// so the next [`Self::sweep_dead_peers`] (from any survivor)
    /// classifies it as a corpse.  The handle must not be used afterwards
    /// except to drop it.
    #[doc(hidden)]
    pub fn debug_abandon_slot(&self) {
        self.slot(self.me)
            .os_pid
            .store(0x7fff_fffe, Ordering::Release);
    }
}

impl Drop for IpcMpf {
    fn drop(&mut self) {
        // Clean detach: return any staged-but-undrained submissions to
        // the pools, then release the heartbeat slot so the pid can be
        // reused and sweeps don't flag us.
        self.reclaim_aio_of(self.me);
        let s = self.slot(self.me);
        s.os_pid.store(0, Ordering::Release);
        s.state.store(slot_state::FREE, Ordering::Release);
    }
}

fn proto_code(p: Protocol) -> u32 {
    match p {
        Protocol::Fcfs => 1,
        Protocol::Broadcast => 2,
    }
}
