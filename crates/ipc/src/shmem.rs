//! The `#[repr(C)]` structures that live *inside* the shared region.
//!
//! Every struct here is overlaid directly onto the mmap'd bytes at the
//! offsets [`mpf::layout::RegionLayout::for_ipc`] computes, so three
//! invariants are compile-time enforced at the bottom of this file:
//!
//! 1. sizes match the byte constants in `mpf::layout` (the carve's
//!    slot strides);
//! 2. every field shared between processes is an atomic (the region is
//!    mapped writable in many address spaces at once — plain fields are
//!    only written during single-owner initialization);
//! 3. no struct contains a pointer — all links are `u32` slot indices
//!    ([`NIL`]-terminated), because the region maps at a different base
//!    address in every process (the Balance 21000 discipline).

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use mpf_shm::waitq::FutexSeq;
use mpf_shm::IpcLock;

use mpf::layout::{
    LNVC_DESC_BYTES, MSG_HEADER_BYTES, PROCESS_SLOT_BYTES, RECV_DESC_BYTES, REGION_HEADER_BYTES,
    REGISTRY_ENTRY_BYTES, SEND_DESC_BYTES,
};

/// Null link for all in-region index chains.
pub const NIL: u32 = u32::MAX;

/// Configuration echo stored in the header so `attach` can verify it
/// speaks the same carve as `create`.
#[repr(C)]
#[derive(Debug)]
pub struct ConfigEcho {
    /// `max_lnvcs` the region was carved with.
    pub max_lnvcs: AtomicU32,
    /// `max_processes` (= number of process slots).
    pub max_processes: AtomicU32,
    /// Payload bytes per block.
    pub block_payload: AtomicU32,
    /// Total message blocks.
    pub total_blocks: AtomicU32,
    /// Message header pool size.
    pub max_messages: AtomicU32,
    /// Send-connection pool size.
    pub max_send_conns: AtomicU32,
    /// Receive-connection pool size.
    pub max_recv_conns: AtomicU32,
    /// 1 when the creator enabled telemetry recording; the segments are
    /// carved either way, this only tells attachers whether to write them.
    pub telemetry: AtomicU32,
    /// Latency sampling period: send timestamps are stamped on 1-in-N
    /// messages (1 = every message).  Echoed so every attacher samples at
    /// the creator's rate.
    pub latency_sample_every: AtomicU32,
    /// Causal-trace sampling period: 1-in-N causal chains are recorded in
    /// the trace rings (1 = every chain, 0 = tracing off).  Echoed so
    /// every attacher traces at the creator's rate.
    pub trace_sample_every: AtomicU32,
}

impl ConfigEcho {
    /// Rebuilds the creator's [`mpf::MpfConfig`] from the echo,
    /// range-checking every field first: a corrupt or truncated region can
    /// present a READY header whose echo holds garbage, and
    /// `MpfConfig::new` asserts (panics) on zeros while huge values would
    /// overflow the layout arithmetic.  `None` means "this echo cannot
    /// have come from a real carve" — attachers and inspectors surface it
    /// as a layout mismatch instead of crashing.
    pub fn decode(&self) -> Option<mpf::MpfConfig> {
        let max_lnvcs = self.max_lnvcs.load(Ordering::Acquire);
        let max_processes = self.max_processes.load(Ordering::Acquire);
        let block_payload = self.block_payload.load(Ordering::Acquire);
        let total_blocks = self.total_blocks.load(Ordering::Acquire);
        let max_messages = self.max_messages.load(Ordering::Acquire);
        let max_send_conns = self.max_send_conns.load(Ordering::Acquire);
        let max_recv_conns = self.max_recv_conns.load(Ordering::Acquire);
        let in_range = |v: u32, hi: u32| (1..=hi).contains(&v);
        if !in_range(max_lnvcs, mpf::types::MAX_LNVC_INDEX + 1)
            || !in_range(max_processes, 1 << 16)
            || !in_range(block_payload, 1 << 24)
            || !in_range(total_blocks, 1 << 28)
            || !in_range(max_messages, 1 << 28)
            || !in_range(max_send_conns, 1 << 24)
            || !in_range(max_recv_conns, 1 << 24)
        {
            return None;
        }
        let mut cfg = mpf::MpfConfig::new(max_lnvcs, max_processes)
            .with_block_payload(block_payload as usize)
            .with_total_blocks(total_blocks)
            .with_max_messages(max_messages);
        cfg.max_send_conns = max_send_conns;
        cfg.max_recv_conns = max_recv_conns;
        cfg.telemetry = self.telemetry.load(Ordering::Acquire) != 0;
        cfg.latency_sample_every = self.latency_sample_every.load(Ordering::Acquire).max(1);
        // 0 is legal here: tracing off.
        cfg.trace_sample_every = self.trace_sample_every.load(Ordering::Acquire);
        Some(cfg)
    }
}

/// A Treiber free-list head over pool indices: `(aba_tag << 32) | index`.
///
/// Lock-free, so a process dying mid-allocation can never strand the
/// list in a locked state (at worst it leaks the one slot it had just
/// popped).
#[repr(C)]
#[derive(Debug)]
pub struct FreeHead {
    word: AtomicU64,
}

impl FreeHead {
    fn pack(tag: u32, idx: u32) -> u64 {
        ((tag as u64) << 32) | idx as u64
    }

    /// Empties the list (init-time only).
    pub fn reset(&self) {
        self.word.store(Self::pack(0, NIL), Ordering::Release);
    }

    /// Pushes `idx`; `set_next` stores the link field of slot `idx`.
    pub fn push(&self, idx: u32, set_next: impl Fn(u32, u32)) {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (tag, head) = ((cur >> 32) as u32, cur as u32);
            set_next(idx, head);
            match self.word.compare_exchange_weak(
                cur,
                Self::pack(tag.wrapping_add(1), idx),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current head index ([`NIL`] when empty) — diagnostic walks only.
    pub fn head(&self) -> u32 {
        self.word.load(Ordering::Acquire) as u32
    }

    /// Pops a slot index; `next_of` reads the link field of a slot.
    pub fn pop(&self, next_of: impl Fn(u32) -> u32) -> Option<u32> {
        let mut cur = self.word.load(Ordering::Acquire);
        loop {
            let (tag, head) = ((cur >> 32) as u32, cur as u32);
            if head == NIL {
                return None;
            }
            let next = next_of(head);
            match self.word.compare_exchange_weak(
                cur,
                Self::pack(tag.wrapping_add(1), next),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Some(head),
                Err(seen) => cur = seen,
            }
        }
    }
}

/// Region state machine values for [`RegionHeader::state`].
pub mod region_state {
    /// `create` is still carving and threading free lists.
    pub const BUILDING: u32 = 0;
    /// Header and pools are ready; attach may proceed.
    pub const READY: u32 = 1;
}

/// First bytes of the region: identification, config echo, init barrier,
/// the registry lock, and the four pool free lists.
#[repr(C)]
#[derive(Debug)]
pub struct RegionHeader {
    /// [`mpf::layout::REGION_MAGIC`]; written before `state` flips
    /// to `READY`.
    pub magic: AtomicU64,
    /// [`mpf::layout::LAYOUT_VERSION`] of the creator.
    pub layout_version: AtomicU32,
    /// Init barrier: [`region_state::BUILDING`] → [`region_state::READY`].
    pub state: AtomicU32,
    /// Total carved bytes (attach cross-checks the file length).
    pub total_bytes: AtomicU64,
    /// Configuration the carve was computed from.  The 40-byte echo ends
    /// 8-aligned, so the 8-aligned lock follows with no padding hole.
    pub cfg: ConfigEcho,
    /// Guards the name registry and LNVC slot allocation (lock order:
    /// registry, then LNVC descriptor).
    pub registry_lock: IpcLock,
    /// Free message headers.
    pub msg_free: FreeHead,
    /// Free payload blocks.
    pub block_free: FreeHead,
    /// Free send-connection descriptors.
    pub send_free: FreeHead,
    /// Free receive-connection descriptors.
    pub recv_free: FreeHead,
    /// Global send stamp (total order over all sends in the region).
    pub next_stamp: AtomicU64,
    /// Liveness-sweep epoch (diagnostic; bumped per completed sweep).
    pub sweep_epoch: AtomicU32,
    _pad: [u8; REGION_HEADER_BYTES - 124],
}

/// Process-slot state values.
pub mod slot_state {
    /// Never attached (or cleanly detached).
    pub const FREE: u32 = 0;
    /// A live process owns this slot.
    pub const ATTACHED: u32 = 1;
    /// The liveness sweep found the owner dead.
    pub const DEAD: u32 = 2;
}

/// One per-process heartbeat slot; the slot index *is* the MPF process
/// id.  Cache-padded so heartbeats never false-share.
#[repr(C)]
#[derive(Debug)]
pub struct ProcessSlot {
    /// [`slot_state`] value, CAS-claimed on attach.
    pub state: AtomicU32,
    /// OS pid of the owner (valid while `state != FREE`).
    pub os_pid: AtomicU32,
    /// Incarnation count: bumped each time the slot is (re)claimed, so a
    /// recycled slot is distinguishable from its dead predecessor.
    pub generation: AtomicU32,
    _pad0: u32,
    /// Bumped on every primitive the owner executes.
    pub heartbeat: AtomicU64,
    _pad: [u8; PROCESS_SLOT_BYTES - 24],
}

impl ProcessSlot {
    /// True when this slot's owner should be treated as alive: the slot
    /// is claimed and its OS process still exists.
    pub fn owner_alive(&self) -> bool {
        self.state.load(Ordering::Acquire) == slot_state::ATTACHED
            && mpf_shm::futex::process_alive(self.os_pid.load(Ordering::Acquire))
    }
}

/// One name-registry entry (guarded by [`RegionHeader::registry_lock`]).
#[repr(C)]
#[derive(Debug)]
pub struct RegistryEntry {
    /// Zero-padded LNVC name (`MAX_NAME_LEN` = 31 guarantees a NUL).
    pub name: [AtomicU32; 8],
    /// 0 free, 1 used.
    pub used: AtomicU32,
    /// Descriptor index the name maps to.
    pub lnvc: AtomicU32,
}

impl RegistryEntry {
    /// Stores `bytes` (≤ 32, zero-padded) into the name words.
    pub fn set_name(&self, bytes: &[u8]) {
        let mut padded = [0u8; 32];
        padded[..bytes.len()].copy_from_slice(bytes);
        for (i, w) in self.name.iter().enumerate() {
            w.store(
                u32::from_le_bytes(padded[i * 4..i * 4 + 4].try_into().unwrap()),
                Ordering::Release,
            );
        }
    }

    /// Loads the zero-padded name bytes.
    pub fn get_name(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, w) in self.name.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.load(Ordering::Acquire).to_le_bytes());
        }
        out
    }
}

/// Message flag bits ([`MsgDesc::flags`]).
pub mod msg_flags {
    /// The message owes one FCFS delivery.
    pub const NEEDS_FCFS: u32 = 1;
    /// The FCFS delivery happened.
    pub const FCFS_TAKEN: u32 = 2;
}

/// One in-region message header.
#[repr(C)]
#[derive(Debug)]
pub struct MsgDesc {
    /// Next message in the LNVC queue (or free-list link), [`NIL`]-ended.
    pub next: AtomicU32,
    /// First payload block index ([`NIL`] for empty payloads).
    pub head_block: AtomicU32,
    /// Number of chained blocks.
    pub n_blocks: AtomicU32,
    /// Payload length in bytes.
    pub len: AtomicU32,
    /// Per-LNVC sequence number (broadcast cursors compare against it).
    pub seq: AtomicU32,
    /// Broadcast deliveries still owed.
    pub bcast_pending: AtomicU32,
    /// [`msg_flags`] bits.
    pub flags: AtomicU32,
    /// Hop count of the causal chain this message continues (0 = root).
    pub hop: AtomicU32,
    /// Global send stamp (total order / tracing).
    pub stamp: AtomicU64,
    /// Wall-clock nanoseconds at send (0 = unstamped), feeding the
    /// telemetry send→receive latency histogram.
    pub sent_at: AtomicU64,
    /// Causal trace id (0 = untraced; bit 63 = sampled flag).  Stamped at
    /// send, read at delivery to continue the chain, cleared at reclaim.
    pub trace: AtomicU64,
}

/// One send-connection descriptor.
#[repr(C)]
#[derive(Debug)]
pub struct SendDesc {
    /// MPF process id of the holder.
    pub pid: AtomicU32,
    /// Next send descriptor on the LNVC (or free-list link).
    pub next: AtomicU32,
}

/// One receive-connection descriptor.
#[repr(C)]
#[derive(Debug)]
pub struct RecvDesc {
    /// MPF process id of the holder.
    pub pid: AtomicU32,
    /// Next receive descriptor on the LNVC (or free-list link).
    pub next: AtomicU32,
    /// `Protocol::as_u32() + 1` (0 would be ambiguous with zeroed slots).
    pub protocol: AtomicU32,
    /// Broadcast cursor: the smallest [`MsgDesc::seq`] this receiver is
    /// owed (set to the LNVC's `next_seq` at open, per the paper's
    /// "new messages only" BROADCAST join rule).
    pub cursor: AtomicU32,
}

/// One LNVC descriptor: the paper's per-conversation structure.
#[repr(C)]
#[derive(Debug)]
pub struct LnvcDesc {
    /// Per-conversation mutex with dead-holder recovery.
    pub lock: IpcLock,
    /// Blocked receivers wait here (cross-process futex sequence).
    pub waitq: FutexSeq,
    /// 0 free, 1 active.
    pub active: AtomicU32,
    /// Bumped on every activation; the high half of public LNVC ids, so
    /// stale ids from a deleted conversation are detectable.
    pub generation: AtomicU32,
    /// Back-link to the registry entry holding this conversation's name.
    pub registry_idx: AtomicU32,
    /// Message queue head (oldest), [`NIL`] when empty.
    pub q_head: AtomicU32,
    /// Message queue tail (newest).
    pub q_tail: AtomicU32,
    /// Queued message count.
    pub msg_count: AtomicU32,
    /// Send-connection list head.
    pub send_head: AtomicU32,
    /// Receive-connection list head.
    pub recv_head: AtomicU32,
    /// Live send connections.
    pub n_senders: AtomicU32,
    /// Live FCFS receive connections.
    pub n_fcfs: AtomicU32,
    /// Live BROADCAST receive connections.
    pub n_bcast: AtomicU32,
    /// Next per-LNVC message sequence number.
    pub next_seq: AtomicU32,
    /// 1 once a peer died mid-conversation; survivors get `PeerDied`.
    pub poisoned: AtomicU32,
    /// MPF pid of the peer whose death poisoned the conversation.
    pub dead_pid: AtomicU32,
    _pad0: u32,
    /// Stamp of the most recent send (diagnostic).
    pub last_stamp: AtomicU64,
    _pad: [u8; LNVC_DESC_BYTES - 88],
}

impl LnvcDesc {
    /// Total live connections.
    pub fn total_connections(&self) -> u32 {
        self.n_senders.load(Ordering::Acquire)
            + self.n_fcfs.load(Ordering::Acquire)
            + self.n_bcast.load(Ordering::Acquire)
    }
}

// ---------------------------------------------------------------------
// The carve contract: struct sizes must equal the layout's slot strides,
// and alignments must divide the 64-byte segment alignment `for_ipc`
// guarantees.  A drifting field breaks the build, not a live region.
// ---------------------------------------------------------------------
const _: () = assert!(std::mem::size_of::<RegionHeader>() == REGION_HEADER_BYTES);
const _: () = assert!(std::mem::align_of::<RegionHeader>() == 8);
const _: () = assert!(std::mem::size_of::<ProcessSlot>() == PROCESS_SLOT_BYTES);
const _: () = assert!(std::mem::align_of::<ProcessSlot>() == 8);
const _: () = assert!(std::mem::size_of::<RegistryEntry>() == REGISTRY_ENTRY_BYTES);
const _: () = assert!(std::mem::align_of::<RegistryEntry>() == 4);
const _: () = assert!(std::mem::size_of::<LnvcDesc>() == LNVC_DESC_BYTES);
const _: () = assert!(std::mem::align_of::<LnvcDesc>() == 8);
const _: () = assert!(std::mem::size_of::<MsgDesc>() == MSG_HEADER_BYTES);
const _: () = assert!(std::mem::align_of::<MsgDesc>() == 8);
const _: () = assert!(std::mem::size_of::<SendDesc>() == SEND_DESC_BYTES);
const _: () = assert!(std::mem::size_of::<RecvDesc>() == RECV_DESC_BYTES);
// Slot strides must preserve each struct's alignment within a segment.
const _: () = assert!(LNVC_DESC_BYTES.is_multiple_of(std::mem::align_of::<LnvcDesc>()));
const _: () = assert!(MSG_HEADER_BYTES.is_multiple_of(std::mem::align_of::<MsgDesc>()));
const _: () = assert!(REGISTRY_ENTRY_BYTES.is_multiple_of(std::mem::align_of::<RegistryEntry>()));
const _: () = assert!(PROCESS_SLOT_BYTES.is_multiple_of(std::mem::align_of::<ProcessSlot>()));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_head_push_pop_lifo() {
        let links: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(NIL)).collect();
        let head = FreeHead {
            word: AtomicU64::new(0),
        };
        head.reset();
        assert!(head
            .pop(|i| links[i as usize].load(Ordering::Acquire))
            .is_none());
        for i in 0..8u32 {
            head.push(i, |slot, next| {
                links[slot as usize].store(next, Ordering::Release)
            });
        }
        for want in (0..8u32).rev() {
            let got = head
                .pop(|i| links[i as usize].load(Ordering::Acquire))
                .unwrap();
            assert_eq!(got, want);
        }
        assert!(head
            .pop(|i| links[i as usize].load(Ordering::Acquire))
            .is_none());
    }

    #[test]
    fn registry_entry_name_roundtrip() {
        let e = RegistryEntry {
            name: Default::default(),
            used: AtomicU32::new(0),
            lnvc: AtomicU32::new(0),
        };
        e.set_name(b"conversation:pivot");
        let got = e.get_name();
        assert_eq!(&got[..18], b"conversation:pivot");
        assert!(got[18..].iter().all(|&b| b == 0));
    }
}
