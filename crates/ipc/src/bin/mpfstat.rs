//! `mpfstat` — inspect a named MPF shared-memory region, live or dead.
//!
//! ```text
//! mpfstat <region-name> [--json] [--watch [seconds]] [--ring N]
//! ```
//!
//! Attaches **read-only** ([`RegionInspector`]): no process slot is
//! claimed, no lock taken, no byte written, so it is safe to point at a
//! region whose writers are running — or crashed.  Prints the process
//! table (with liveness), the LNVC table (queue depths, protocols,
//! poison state), facility counters, latency/size percentiles, and the
//! tail of each attached-or-dead process's flight ring.
//!
//! `--json` emits one machine-readable document instead (hand-rolled —
//! the workspace is dependency-free by design).  `--watch` re-samples
//! every `seconds` (default 1), printing counter deltas per interval.

use std::fmt::Write as _;
use std::time::Duration;

use mpf_ipc::inspect::RegionInspector;
use mpf_shm::telemetry::{event_name, HistSnapshot, TelSnapshot};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut json = false;
    let mut watch: Option<Duration> = None;
    let mut ring_tail = 16usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--watch" => {
                let secs = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<f64>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(1.0);
                watch = Some(Duration::from_secs_f64(secs.max(0.05)));
            }
            "--ring" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    ring_tail = n;
                    i += 1;
                }
            }
            "--help" | "-h" => {
                eprintln!("usage: mpfstat <region-name> [--json] [--watch [seconds]] [--ring N]");
                return;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("mpfstat: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(name) = name else {
        eprintln!("usage: mpfstat <region-name> [--json] [--watch [seconds]] [--ring N]");
        std::process::exit(2);
    };

    let insp = match RegionInspector::attach(&name) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("mpfstat: cannot attach `{name}`: {e}");
            std::process::exit(1);
        }
    };

    match watch {
        None => {
            let out = if json {
                render_json(&insp, ring_tail)
            } else {
                render_text(&insp, ring_tail, None)
            };
            println!("{out}");
        }
        Some(interval) => {
            let mut prev = insp.telemetry_snapshot();
            loop {
                std::thread::sleep(interval);
                let now = insp.telemetry_snapshot();
                let out = if json {
                    render_json(&insp, ring_tail)
                } else {
                    // ANSI clear-screen + home keeps the table in place.
                    format!(
                        "\x1b[2J\x1b[H{}",
                        render_text(&insp, ring_tail, Some(now.diff(&prev)))
                    )
                };
                println!("{out}");
                prev = now;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------------

fn render_text(insp: &RegionInspector, ring_tail: usize, delta: Option<TelSnapshot>) -> String {
    let mut s = String::new();
    let cfg = insp.config();
    let _ = writeln!(
        s,
        "region {} — {} bytes, telemetry {}",
        insp.name(),
        insp.region_bytes(),
        if insp.telemetry_enabled() {
            "on"
        } else {
            "off"
        },
    );
    let _ = writeln!(
        s,
        "config: {} lnvcs, {} processes, {} messages, {} blocks × {} B; {} total sends, sweep epoch {}",
        cfg.max_lnvcs,
        cfg.max_processes,
        cfg.max_messages,
        cfg.total_blocks,
        cfg.block_payload,
        insp.next_stamp(),
        insp.sweep_epoch(),
    );

    let _ = writeln!(s, "\nprocesses:");
    let _ = writeln!(
        s,
        "  {:>4} {:>9} {:>8} {:>6} {:>10} {:>4}",
        "pid", "state", "os-pid", "alive", "heartbeat", "gen"
    );
    for p in insp.processes() {
        if p.state == "free" && p.heartbeat == 0 {
            continue; // never used
        }
        let _ = writeln!(
            s,
            "  {:>4} {:>9} {:>8} {:>6} {:>10} {:>4}",
            p.pid,
            p.state,
            p.os_pid,
            if p.state == "attached" {
                if p.alive {
                    "yes"
                } else {
                    "NO"
                }
            } else {
                "-"
            },
            p.heartbeat,
            p.generation,
        );
    }

    let lnvcs = insp.lnvcs();
    let _ = writeln!(s, "\nlnvcs ({} active):", lnvcs.len());
    let _ = writeln!(
        s,
        "  {:>3} {:<16} {:>6} {:>7} {:>4} {:>5} {:>6} {:>7} {:>7} {:>5} {:>8}",
        "idx",
        "name",
        "queued",
        "reclaim",
        "tx",
        "fcfs",
        "bcast",
        "sends",
        "recvs",
        "hwm",
        "poison"
    );
    for l in &lnvcs {
        let _ = writeln!(
            s,
            "  {:>3} {:<16} {:>6} {:>7} {:>4} {:>5} {:>6} {:>7} {:>7} {:>5} {:>8}",
            l.index,
            l.name,
            l.queued,
            l.reclaimable,
            l.n_senders,
            l.n_fcfs,
            l.n_bcast,
            l.tel.sends,
            l.tel.receives,
            l.tel.depth_hwm,
            if l.poisoned {
                format!("pid {}", l.dead_pid)
            } else {
                "-".into()
            },
        );
    }

    let t = insp.telemetry_snapshot();
    let _ = writeln!(s, "\ncounters:");
    let _ = writeln!(
        s,
        "  sends {}  receives {}  bytes-in {}  bytes-out {}",
        t.sends, t.receives, t.bytes_in, t.bytes_out
    );
    let _ = writeln!(
        s,
        "  recv-waits {}  send-waits {}  reclaims {}  lock-contended {}",
        t.recv_waits, t.send_waits, t.reclaims, t.lock_contended
    );
    let _ = writeln!(
        s,
        "  lnvcs created {} / deleted {}  sweeps {}  peers-died {}",
        t.lnvcs_created, t.lnvcs_deleted, t.sweeps, t.peers_died
    );
    if let Some(d) = delta {
        let _ = writeln!(
            s,
            "  Δ interval: sends {}  receives {}  bytes-in {}  bytes-out {}",
            d.sends, d.receives, d.bytes_in, d.bytes_out
        );
    }
    let _ = writeln!(s, "\nmessage size   {}", hist_line(&t.size_hist, "B"));
    let _ = writeln!(s, "send→recv lat  {}", hist_line(&t.latency_hist, "ns"));

    let rings: Vec<_> = insp
        .aio_rings()
        .into_iter()
        .filter(|r| r.stats.submitted > 0 || r.stats.sq_depth > 0 || r.stats.cq_depth > 0)
        .collect();
    if !rings.is_empty() {
        let _ = writeln!(s, "\naio rings:");
        let _ = writeln!(
            s,
            "  {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
            "pid",
            "sq-depth",
            "cq-depth",
            "submitted",
            "drained",
            "completed",
            "reaped",
            "sq-bell",
            "cq-bell"
        );
        for r in &rings {
            let _ = writeln!(
                s,
                "  {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
                r.pid,
                r.stats.sq_depth,
                r.stats.cq_depth,
                r.stats.submitted,
                r.stats.drained,
                r.stats.completed,
                r.stats.reaped,
                r.stats.sq_doorbells,
                r.stats.cq_doorbells,
            );
        }
    }

    for p in insp.processes() {
        if p.state == "free" {
            continue;
        }
        let ev = insp.flight_events(p.pid);
        if ev.is_empty() {
            continue;
        }
        let _ = writeln!(
            s,
            "\nflight ring, mpf pid {} (os pid {}, {}):",
            p.pid,
            insp.ring_writer(p.pid),
            p.state
        );
        for e in ev.iter().rev().take(ring_tail).rev() {
            let _ = writeln!(
                s,
                "  #{:<6} t={} {:<12} lnvc={} arg={}",
                e.seq,
                e.tstamp,
                event_name(e.kind),
                if e.lnvc == u32::MAX {
                    "-".into()
                } else {
                    e.lnvc.to_string()
                },
                e.arg,
            );
        }
    }
    s
}

fn hist_line(h: &HistSnapshot, unit: &str) -> String {
    if h.count == 0 {
        return "(no samples)".into();
    }
    format!(
        "n={} mean={:.0}{unit} p50={}{unit} p99={}{unit} max={}{unit}",
        h.count,
        h.mean(),
        h.percentile(0.50),
        h.percentile(0.99),
        h.max,
    )
}

// ---------------------------------------------------------------------------
// JSON rendering (no deps: escape + emit by hand)
// ---------------------------------------------------------------------------

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jhist(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        h.mean(),
        h.percentile(0.50),
        h.percentile(0.99),
        h.buckets
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(","),
    )
}

fn render_json(insp: &RegionInspector, ring_tail: usize) -> String {
    let cfg = insp.config();
    let t = insp.telemetry_snapshot();

    let procs = insp
        .processes()
        .iter()
        .map(|p| {
            format!(
                "{{\"pid\":{},\"state\":{},\"os_pid\":{},\"alive\":{},\"heartbeat\":{},\"generation\":{}}}",
                p.pid,
                jstr(p.state),
                p.os_pid,
                p.alive,
                p.heartbeat,
                p.generation
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let lnvcs = insp
        .lnvcs()
        .iter()
        .map(|l| {
            format!(
                "{{\"index\":{},\"name\":{},\"generation\":{},\"queued\":{},\"reclaimable\":{},\
                 \"n_senders\":{},\"n_fcfs\":{},\"n_bcast\":{},\"next_seq\":{},\"poisoned\":{},\
                 \"dead_pid\":{},\"sends\":{},\"receives\":{},\"bytes_in\":{},\"bytes_out\":{},\
                 \"recv_waits\":{},\"reclaims\":{},\"depth_hwm\":{},\"latency\":{}}}",
                l.index,
                jstr(&l.name),
                l.generation,
                l.queued,
                l.reclaimable,
                l.n_senders,
                l.n_fcfs,
                l.n_bcast,
                l.next_seq,
                l.poisoned,
                l.dead_pid,
                l.tel.sends,
                l.tel.receives,
                l.tel.bytes_in,
                l.tel.bytes_out,
                l.tel.recv_waits,
                l.tel.reclaims,
                l.tel.depth_hwm,
                jhist(&l.tel.latency),
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let rings = insp
        .processes()
        .iter()
        .filter(|p| p.state != "free")
        .map(|p| {
            let ev = insp.flight_events(p.pid);
            let tail = ev
                .iter()
                .rev()
                .take(ring_tail)
                .rev()
                .map(|e| {
                    format!(
                        "{{\"seq\":{},\"tstamp\":{},\"kind\":{},\"lnvc\":{},\"arg\":{}}}",
                        e.seq,
                        e.tstamp,
                        jstr(event_name(e.kind)),
                        if e.lnvc == u32::MAX {
                            "null".into()
                        } else {
                            e.lnvc.to_string()
                        },
                        e.arg,
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"pid\":{},\"os_pid\":{},\"state\":{},\"events\":[{tail}]}}",
                p.pid,
                insp.ring_writer(p.pid),
                jstr(p.state),
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let aio = insp
        .aio_rings()
        .iter()
        .map(|r| {
            format!(
                "{{\"pid\":{},\"sq_depth\":{},\"cq_depth\":{},\"sq_doorbells\":{},\"cq_doorbells\":{},\
                 \"submitted\":{},\"drained\":{},\"completed\":{},\"reaped\":{}}}",
                r.pid,
                r.stats.sq_depth,
                r.stats.cq_depth,
                r.stats.sq_doorbells,
                r.stats.cq_doorbells,
                r.stats.submitted,
                r.stats.drained,
                r.stats.completed,
                r.stats.reaped,
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    format!(
        "{{\"region\":{},\"region_bytes\":{},\"telemetry\":{},\"next_stamp\":{},\"sweep_epoch\":{},\
         \"config\":{{\"max_lnvcs\":{},\"max_processes\":{},\"max_messages\":{},\"total_blocks\":{},\"block_payload\":{}}},\
         \"counters\":{{\"sends\":{},\"receives\":{},\"bytes_in\":{},\"bytes_out\":{},\
         \"recv_waits\":{},\"send_waits\":{},\"reclaims\":{},\"lnvcs_created\":{},\"lnvcs_deleted\":{},\
         \"lock_contended\":{},\"sweeps\":{},\"peers_died\":{}}},\
         \"size_hist\":{},\"latency_hist\":{},\"aio_rings\":[{aio}],\
         \"processes\":[{procs}],\"lnvcs\":[{lnvcs}],\"flight_rings\":[{rings}]}}",
        jstr(insp.name()),
        insp.region_bytes(),
        insp.telemetry_enabled(),
        insp.next_stamp(),
        insp.sweep_epoch(),
        cfg.max_lnvcs,
        cfg.max_processes,
        cfg.max_messages,
        cfg.total_blocks,
        cfg.block_payload,
        t.sends,
        t.receives,
        t.bytes_in,
        t.bytes_out,
        t.recv_waits,
        t.send_waits,
        t.reclaims,
        t.lnvcs_created,
        t.lnvcs_deleted,
        t.lock_contended,
        t.sweeps,
        t.peers_died,
        jhist(&t.size_hist),
        jhist(&t.latency_hist),
    )
}
