//! `mpfstat` — inspect a named MPF shared-memory region, live or dead.
//!
//! ```text
//! mpfstat <region-name> [--json] [--watch [seconds]] [--ring N] [--trace]
//! ```
//!
//! Attaches **read-only** ([`RegionInspector`]): no process slot is
//! claimed, no lock taken, no byte written, so it is safe to point at a
//! region whose writers are running — or crashed.  Prints the process
//! table (with liveness), the LNVC table (queue depths, protocols,
//! poison state), facility counters, latency/size percentiles, and the
//! tail of each attached-or-dead process's flight ring.
//!
//! `--json` emits one machine-readable document instead (hand-rolled —
//! the workspace is dependency-free by design).  `--watch` re-samples
//! every `seconds` (default 1), printing counter deltas per interval
//! with sparkline rate history.  `--trace` switches to the causal
//! trace-ring subview: per-process ring occupancy/drops plus the raw
//! record tail `mpf-trace` reconstructs chains from.

use std::fmt::Write as _;
use std::time::Duration;

use mpf_ipc::inspect::RegionInspector;
use mpf_shm::telemetry::{event_name, HistSnapshot, TelSnapshot};
use mpf_shm::tracering::trace_event_name;

const USAGE: &str =
    "usage: mpfstat <region-name> [--json] [--watch [seconds]] [--ring N] [--trace]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut name = None;
    let mut json = false;
    let mut trace = false;
    let mut watch: Option<Duration> = None;
    let mut ring_tail = 16usize;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--trace" => trace = true,
            "--watch" => {
                let secs = args
                    .get(i + 1)
                    .and_then(|s| s.parse::<f64>().ok())
                    .inspect(|_| i += 1)
                    .unwrap_or(1.0);
                watch = Some(Duration::from_secs_f64(secs.max(0.05)));
            }
            "--ring" => {
                if let Some(n) = args.get(i + 1).and_then(|s| s.parse::<usize>().ok()) {
                    ring_tail = n;
                    i += 1;
                }
            }
            "--help" | "-h" => {
                eprintln!("{USAGE}");
                return;
            }
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_string()),
            other => {
                eprintln!("mpfstat: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    let Some(name) = name else {
        eprintln!("{USAGE}");
        std::process::exit(2);
    };

    let insp = match RegionInspector::attach(&name) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("mpfstat: cannot attach `{name}`: {e}");
            std::process::exit(1);
        }
    };

    match watch {
        None => {
            let out = match (trace, json) {
                (true, true) => render_trace_json(&insp, ring_tail),
                (true, false) => render_trace_text(&insp, ring_tail),
                (false, true) => render_json(&insp, ring_tail),
                (false, false) => render_text(&insp, ring_tail, &[]),
            };
            println!("{out}");
        }
        Some(interval) => {
            let mut prev = insp.telemetry_snapshot();
            // Per-interval counter deltas, oldest first — the raw series
            // the sparklines are drawn from.
            let mut history: Vec<TelSnapshot> = Vec::new();
            loop {
                std::thread::sleep(interval);
                let now = insp.telemetry_snapshot();
                history.push(now.diff(&prev));
                if history.len() > SPARK_WIDTH {
                    history.remove(0);
                }
                let out = if trace {
                    format!("\x1b[2J\x1b[H{}", render_trace_text(&insp, ring_tail))
                } else if json {
                    render_json(&insp, ring_tail)
                } else {
                    // ANSI clear-screen + home keeps the table in place.
                    format!("\x1b[2J\x1b[H{}", render_text(&insp, ring_tail, &history))
                };
                println!("{out}");
                prev = now;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sparklines
// ---------------------------------------------------------------------------

/// Intervals of history a `--watch` sparkline spans.
const SPARK_WIDTH: usize = 32;

const SPARK_RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// One block glyph per value, scaled to the series maximum (a flat-zero
/// series renders as a baseline).
fn spark(values: impl Iterator<Item = u64>) -> String {
    let values: Vec<u64> = values.collect();
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 || v == 0 {
                SPARK_RAMP[0]
            } else {
                SPARK_RAMP[1 + (v * 6 / max) as usize]
            }
        })
        .collect()
}

/// Histogram bucket profile, trimmed to the occupied prefix.
fn hist_spark(h: &HistSnapshot) -> String {
    let last = match h.buckets.iter().rposition(|&b| b != 0) {
        Some(i) => i,
        None => return String::new(),
    };
    format!("  [{}]", spark(h.buckets[..=last].iter().copied()))
}

// ---------------------------------------------------------------------------
// Text rendering
// ---------------------------------------------------------------------------

fn render_text(insp: &RegionInspector, ring_tail: usize, history: &[TelSnapshot]) -> String {
    let mut s = String::new();
    let cfg = insp.config();
    let _ = writeln!(
        s,
        "region {} — {} bytes, telemetry {}",
        insp.name(),
        insp.region_bytes(),
        if insp.telemetry_enabled() {
            "on"
        } else {
            "off"
        },
    );
    let _ = writeln!(
        s,
        "config: {} lnvcs, {} processes, {} messages, {} blocks × {} B; {} total sends, sweep epoch {}",
        cfg.max_lnvcs,
        cfg.max_processes,
        cfg.max_messages,
        cfg.total_blocks,
        cfg.block_payload,
        insp.next_stamp(),
        insp.sweep_epoch(),
    );

    let _ = writeln!(s, "\nprocesses:");
    let _ = writeln!(
        s,
        "  {:>4} {:>9} {:>8} {:>6} {:>10} {:>4}",
        "pid", "state", "os-pid", "alive", "heartbeat", "gen"
    );
    for p in insp.processes() {
        if p.state == "free" && p.heartbeat == 0 {
            continue; // never used
        }
        let _ = writeln!(
            s,
            "  {:>4} {:>9} {:>8} {:>6} {:>10} {:>4}",
            p.pid,
            p.state,
            p.os_pid,
            if p.state == "attached" {
                if p.alive {
                    "yes"
                } else {
                    "NO"
                }
            } else {
                "-"
            },
            p.heartbeat,
            p.generation,
        );
    }

    let lnvcs = insp.lnvcs();
    let _ = writeln!(s, "\nlnvcs ({} active):", lnvcs.len());
    let _ = writeln!(
        s,
        "  {:>3} {:<16} {:>6} {:>7} {:>4} {:>5} {:>6} {:>7} {:>7} {:>5} {:>8}",
        "idx",
        "name",
        "queued",
        "reclaim",
        "tx",
        "fcfs",
        "bcast",
        "sends",
        "recvs",
        "hwm",
        "poison"
    );
    for l in &lnvcs {
        let _ = writeln!(
            s,
            "  {:>3} {:<16} {:>6} {:>7} {:>4} {:>5} {:>6} {:>7} {:>7} {:>5} {:>8}",
            l.index,
            l.name,
            l.queued,
            l.reclaimable,
            l.n_senders,
            l.n_fcfs,
            l.n_bcast,
            l.tel.sends,
            l.tel.receives,
            l.tel.depth_hwm,
            if l.poisoned {
                format!("pid {}", l.dead_pid)
            } else {
                "-".into()
            },
        );
    }

    let t = insp.telemetry_snapshot();
    let _ = writeln!(s, "\ncounters:");
    let _ = writeln!(
        s,
        "  sends {}  receives {}  bytes-in {}  bytes-out {}",
        t.sends, t.receives, t.bytes_in, t.bytes_out
    );
    let _ = writeln!(
        s,
        "  recv-waits {}  send-waits {}  reclaims {}  lock-contended {}",
        t.recv_waits, t.send_waits, t.reclaims, t.lock_contended
    );
    let _ = writeln!(
        s,
        "  lnvcs created {} / deleted {}  sweeps {}  peers-died {}",
        t.lnvcs_created, t.lnvcs_deleted, t.sweeps, t.peers_died
    );
    if let Some(d) = history.last() {
        let _ = writeln!(
            s,
            "  Δ interval: sends {}  receives {}  bytes-in {}  bytes-out {}",
            d.sends, d.receives, d.bytes_in, d.bytes_out
        );
        let _ = writeln!(
            s,
            "  sends/ivl    {}\n  receives/ivl {}\n  bytes-in/ivl {}",
            spark(history.iter().map(|d| d.sends)),
            spark(history.iter().map(|d| d.receives)),
            spark(history.iter().map(|d| d.bytes_in)),
        );
    }
    let _ = writeln!(
        s,
        "\nmessage size   {}{}",
        hist_line(&t.size_hist, "B"),
        hist_spark(&t.size_hist)
    );
    let _ = writeln!(
        s,
        "send→recv lat  {}{}",
        hist_line(&t.latency_hist, "ns"),
        hist_spark(&t.latency_hist)
    );

    let rings: Vec<_> = insp
        .aio_rings()
        .into_iter()
        .filter(|r| r.stats.submitted > 0 || r.stats.sq_depth > 0 || r.stats.cq_depth > 0)
        .collect();
    if !rings.is_empty() {
        let _ = writeln!(s, "\naio rings:");
        let _ = writeln!(
            s,
            "  {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
            "pid",
            "sq-depth",
            "cq-depth",
            "submitted",
            "drained",
            "completed",
            "reaped",
            "sq-bell",
            "cq-bell"
        );
        for r in &rings {
            let _ = writeln!(
                s,
                "  {:>4} {:>8} {:>8} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}",
                r.pid,
                r.stats.sq_depth,
                r.stats.cq_depth,
                r.stats.submitted,
                r.stats.drained,
                r.stats.completed,
                r.stats.reaped,
                r.stats.sq_doorbells,
                r.stats.cq_doorbells,
            );
        }
    }

    for p in insp.processes() {
        if p.state == "free" {
            continue;
        }
        let ev = insp.flight_events(p.pid);
        if ev.is_empty() {
            continue;
        }
        let _ = writeln!(
            s,
            "\nflight ring, mpf pid {} (os pid {}, {}):",
            p.pid,
            insp.ring_writer(p.pid),
            p.state
        );
        for e in ev.iter().rev().take(ring_tail).rev() {
            let _ = writeln!(
                s,
                "  #{:<6} t={} {:<12} lnvc={} arg={}",
                e.seq,
                e.tstamp,
                event_name(e.kind),
                if e.lnvc == u32::MAX {
                    "-".into()
                } else {
                    e.lnvc.to_string()
                },
                e.arg,
            );
        }
    }
    s
}

fn hist_line(h: &HistSnapshot, unit: &str) -> String {
    if h.count == 0 {
        return "(no samples)".into();
    }
    format!(
        "n={} mean={:.0}{unit} p50={}{unit} p99={}{unit} max={}{unit}",
        h.count,
        h.mean(),
        h.percentile(0.50),
        h.percentile(0.99),
        h.max,
    )
}

// ---------------------------------------------------------------------------
// JSON rendering (no deps: escape + emit by hand)
// ---------------------------------------------------------------------------

fn jstr(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn jhist(h: &HistSnapshot) -> String {
    format!(
        "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p99\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum,
        h.max,
        h.mean(),
        h.percentile(0.50),
        h.percentile(0.99),
        h.buckets
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(","),
    )
}

fn render_json(insp: &RegionInspector, ring_tail: usize) -> String {
    let cfg = insp.config();
    let t = insp.telemetry_snapshot();

    let procs = insp
        .processes()
        .iter()
        .map(|p| {
            format!(
                "{{\"pid\":{},\"state\":{},\"os_pid\":{},\"alive\":{},\"heartbeat\":{},\"generation\":{}}}",
                p.pid,
                jstr(p.state),
                p.os_pid,
                p.alive,
                p.heartbeat,
                p.generation
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let lnvcs = insp
        .lnvcs()
        .iter()
        .map(|l| {
            format!(
                "{{\"index\":{},\"name\":{},\"generation\":{},\"queued\":{},\"reclaimable\":{},\
                 \"n_senders\":{},\"n_fcfs\":{},\"n_bcast\":{},\"next_seq\":{},\"poisoned\":{},\
                 \"dead_pid\":{},\"sends\":{},\"receives\":{},\"bytes_in\":{},\"bytes_out\":{},\
                 \"recv_waits\":{},\"reclaims\":{},\"depth_hwm\":{},\"latency\":{}}}",
                l.index,
                jstr(&l.name),
                l.generation,
                l.queued,
                l.reclaimable,
                l.n_senders,
                l.n_fcfs,
                l.n_bcast,
                l.next_seq,
                l.poisoned,
                l.dead_pid,
                l.tel.sends,
                l.tel.receives,
                l.tel.bytes_in,
                l.tel.bytes_out,
                l.tel.recv_waits,
                l.tel.reclaims,
                l.tel.depth_hwm,
                jhist(&l.tel.latency),
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let rings = insp
        .processes()
        .iter()
        .filter(|p| p.state != "free")
        .map(|p| {
            let ev = insp.flight_events(p.pid);
            let tail = ev
                .iter()
                .rev()
                .take(ring_tail)
                .rev()
                .map(|e| {
                    format!(
                        "{{\"seq\":{},\"tstamp\":{},\"kind\":{},\"lnvc\":{},\"arg\":{}}}",
                        e.seq,
                        e.tstamp,
                        jstr(event_name(e.kind)),
                        if e.lnvc == u32::MAX {
                            "null".into()
                        } else {
                            e.lnvc.to_string()
                        },
                        e.arg,
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"pid\":{},\"os_pid\":{},\"state\":{},\"events\":[{tail}]}}",
                p.pid,
                insp.ring_writer(p.pid),
                jstr(p.state),
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    let aio = insp
        .aio_rings()
        .iter()
        .map(|r| {
            format!(
                "{{\"pid\":{},\"sq_depth\":{},\"cq_depth\":{},\"sq_doorbells\":{},\"cq_doorbells\":{},\
                 \"submitted\":{},\"drained\":{},\"completed\":{},\"reaped\":{}}}",
                r.pid,
                r.stats.sq_depth,
                r.stats.cq_depth,
                r.stats.sq_doorbells,
                r.stats.cq_doorbells,
                r.stats.submitted,
                r.stats.drained,
                r.stats.completed,
                r.stats.reaped,
            )
        })
        .collect::<Vec<_>>()
        .join(",");

    format!(
        "{{\"region\":{},\"region_bytes\":{},\"telemetry\":{},\"next_stamp\":{},\"sweep_epoch\":{},\
         \"config\":{{\"max_lnvcs\":{},\"max_processes\":{},\"max_messages\":{},\"total_blocks\":{},\"block_payload\":{}}},\
         \"counters\":{{\"sends\":{},\"receives\":{},\"bytes_in\":{},\"bytes_out\":{},\
         \"recv_waits\":{},\"send_waits\":{},\"reclaims\":{},\"lnvcs_created\":{},\"lnvcs_deleted\":{},\
         \"lock_contended\":{},\"sweeps\":{},\"peers_died\":{}}},\
         \"size_hist\":{},\"latency_hist\":{},\"aio_rings\":[{aio}],\
         \"processes\":[{procs}],\"lnvcs\":[{lnvcs}],\"flight_rings\":[{rings}]}}",
        jstr(insp.name()),
        insp.region_bytes(),
        insp.telemetry_enabled(),
        insp.next_stamp(),
        insp.sweep_epoch(),
        cfg.max_lnvcs,
        cfg.max_processes,
        cfg.max_messages,
        cfg.total_blocks,
        cfg.block_payload,
        t.sends,
        t.receives,
        t.bytes_in,
        t.bytes_out,
        t.recv_waits,
        t.send_waits,
        t.reclaims,
        t.lnvcs_created,
        t.lnvcs_deleted,
        t.lock_contended,
        t.sweeps,
        t.peers_died,
        jhist(&t.size_hist),
        jhist(&t.latency_hist),
    )
}

// ---------------------------------------------------------------------------
// Trace subview (`--trace`)
// ---------------------------------------------------------------------------

fn render_trace_text(insp: &RegionInspector, ring_tail: usize) -> String {
    let mut s = String::new();
    let every = insp.config().trace_sample_every;
    let _ = writeln!(
        s,
        "region {} — causal tracing {}",
        insp.name(),
        match every {
            0 => "off".to_string(),
            1 => "on (every chain)".to_string(),
            n => format!("on (1-in-{n} chains)"),
        },
    );

    let rings: Vec<_> = insp
        .trace_rings()
        .into_iter()
        .filter(|r| r.recorded > 0 || r.sampled_out > 0)
        .collect();
    let _ = writeln!(s, "\ntrace rings ({} active):", rings.len());
    let _ = writeln!(
        s,
        "  {:>4} {:>8} {:>9} {:>6} {:>6} {:>11}",
        "pid", "os-pid", "recorded", "live", "lost", "sampled-out"
    );
    for r in &rings {
        let _ = writeln!(
            s,
            "  {:>4} {:>8} {:>9} {:>6} {:>6} {:>11}",
            r.pid,
            r.writer_pid,
            r.recorded,
            r.recorded - r.overwritten,
            r.overwritten,
            r.sampled_out,
        );
    }

    for r in &rings {
        let ev = insp.trace_events(r.pid);
        if ev.is_empty() {
            continue;
        }
        let _ = writeln!(
            s,
            "\ntrace tail, mpf pid {} (os pid {}):",
            r.pid, r.writer_pid
        );
        for e in ev.iter().rev().take(ring_tail).rev() {
            let _ = writeln!(
                s,
                "  #{:<6} t={} {:<10} trace={:#x} hop={} stamp={} lnvc={} arg={} arg2={}",
                e.seq,
                e.tstamp,
                trace_event_name(e.kind),
                e.trace,
                e.hop,
                e.stamp,
                if e.lnvc == u32::MAX {
                    "-".into()
                } else {
                    e.lnvc.to_string()
                },
                e.arg,
                e.arg2,
            );
        }
    }
    if rings.is_empty() {
        let _ = writeln!(
            s,
            "\n(no trace records; was the region created with tracing on?)"
        );
    }
    s
}

fn render_trace_json(insp: &RegionInspector, ring_tail: usize) -> String {
    let rings = insp
        .trace_rings()
        .iter()
        .filter(|r| r.recorded > 0 || r.sampled_out > 0)
        .map(|r| {
            let ev = insp.trace_events(r.pid);
            let tail = ev
                .iter()
                .rev()
                .take(ring_tail)
                .rev()
                .map(|e| {
                    format!(
                        "{{\"seq\":{},\"tstamp\":{},\"kind\":{},\"trace\":\"{:#x}\",\
                         \"hop\":{},\"stamp\":{},\"lnvc\":{},\"arg\":{},\"arg2\":{}}}",
                        e.seq,
                        e.tstamp,
                        jstr(trace_event_name(e.kind)),
                        e.trace,
                        e.hop,
                        e.stamp,
                        if e.lnvc == u32::MAX {
                            "null".into()
                        } else {
                            e.lnvc.to_string()
                        },
                        e.arg,
                        e.arg2,
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(
                "{{\"pid\":{},\"os_pid\":{},\"recorded\":{},\"overwritten\":{},\
                 \"sampled_out\":{},\"events\":[{tail}]}}",
                r.pid, r.writer_pid, r.recorded, r.overwritten, r.sampled_out,
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(
        "{{\"region\":{},\"trace_enabled\":{},\"sample_every\":{},\"trace_rings\":[{rings}]}}",
        jstr(insp.name()),
        insp.trace_enabled(),
        insp.config().trace_sample_every,
    )
}
