//! # mpf-ipc — MPF over a genuine OS shared-memory region
//!
//! The paper ran MPF as "a group of Unix processes" sharing one region of
//! physical memory on the Sequent Balance 21000.  The workspace's thread
//! backend (`mpf-core`) keeps the algorithms but fakes the processes;
//! this crate removes the fake:
//!
//! * [`IpcMpf::create`] mmaps a named region (`/dev/shm/mpf-region-<name>`)
//!   and carves it per [`mpf::layout::RegionLayout::for_ipc`] — a
//!   header with magic/layout-version/config echo, per-process heartbeat
//!   slots, then the descriptor pools and block store, all addressed by
//!   `u32` index so the region works at any base address;
//! * any other process [`IpcMpf::attach`]es by name (an init barrier in
//!   the header orders attach after the carve) and the eight primitives
//!   operate directly on the shared bytes, with
//!   [`mpf_shm::IpcLock`]/[`mpf_shm::waitq::FutexSeq`] providing
//!   cross-process mutual exclusion and blocking receive;
//! * a peer that dies mid-conversation is detected (its heartbeat slot
//!   names an OS pid that no longer exists), its held locks are broken,
//!   its connections swept, and the conversations it touched poisoned —
//!   survivors get [`mpf::MpfError::PeerDied`], never a deadlock.
//!
//! [`ffi`] exports the same surface with a C ABI so separately compiled
//! binaries can join a conversation knowing only the region name.

pub mod facility;
pub mod ffi;
pub mod inspect;
pub mod shmem;

pub use facility::{AttachError, IpcLnvcId, IpcMpf};
pub use inspect::{AioRingInfo, LnvcInfo, ProcessInfo, RegionInspector};
