//! `extern "C"` bindings for the multi-process backend.
//!
//! Unlike `mpf::capi_ffi` (one global facility per process), these
//! functions are handle-based: `mpf_ipc_create`/`mpf_ipc_attach` return
//! an opaque handle a separately compiled binary uses for every further
//! call, so one process can hold several regions.  The intended C usage:
//!
//! ```c
//! void *h = mpf_ipc_attach("jobname");
//! long long id = mpf_ipc_open_receive(h, "results", 0 /* FCFS */);
//! long n = mpf_ipc_message_receive(h, id, buf, sizeof buf);
//! mpf_ipc_close_receive(h, id);
//! mpf_ipc_detach(h);
//! ```
//!
//! Status codes are [`MpfError::status_code`] values (negative);
//! conversation ids are the raw [`IpcLnvcId`] `u64`, always positive and
//! returned in an `int64_t` so the sign still carries errors.

use std::ffi::CStr;
use std::os::raw::{c_char, c_int, c_long, c_longlong, c_void};

use mpf::{MpfConfig, MpfError, Protocol};

use crate::facility::{IpcLnvcId, IpcMpf};

/// Status returned when a handle or required pointer is NULL.
fn bad_handle() -> c_int {
    MpfError::BadInit.status_code() as c_int
}

/// Converts a C string, mapping NULL/invalid UTF-8 to the invalid-name
/// status code.
///
/// # Safety
/// `name` must be NULL or a valid NUL-terminated string.
unsafe fn name_arg<'a>(name: *const c_char) -> Result<&'a str, c_int> {
    if name.is_null() {
        return Err(MpfError::InvalidName { len: 0, max: 0 }.status_code());
    }
    CStr::from_ptr(name)
        .to_str()
        .map_err(|_| MpfError::InvalidName { len: 0, max: 0 }.status_code())
}

unsafe fn handle<'a>(h: *mut c_void) -> Result<&'a IpcMpf, c_int> {
    if h.is_null() {
        return Err(bad_handle());
    }
    Ok(&*(h as *const IpcMpf))
}

fn status(r: mpf::Result<()>) -> c_int {
    match r {
        Ok(()) => 0,
        Err(e) => e.status_code(),
    }
}

/// Creates and carves a named region; returns an opaque handle or NULL.
/// `max_lnvcs`/`max_processes` mirror the paper's `init` parameters.
///
/// # Safety
/// `region_name` must be a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_create(
    region_name: *const c_char,
    max_lnvcs: c_int,
    max_processes: c_int,
) -> *mut c_void {
    let Ok(name) = name_arg(region_name) else {
        return std::ptr::null_mut();
    };
    if max_lnvcs <= 0 || max_processes <= 0 {
        return std::ptr::null_mut();
    }
    let cfg = MpfConfig::new(max_lnvcs as u32, max_processes as u32);
    match IpcMpf::create(name, &cfg) {
        Ok(m) => Box::into_raw(Box::new(m)) as *mut c_void,
        Err(_) => std::ptr::null_mut(),
    }
}

/// Attaches an existing region by name; returns an opaque handle or NULL
/// (region missing, layout mismatch, or no free process slot).
///
/// # Safety
/// `region_name` must be a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_attach(region_name: *const c_char) -> *mut c_void {
    let Ok(name) = name_arg(region_name) else {
        return std::ptr::null_mut();
    };
    match IpcMpf::attach(name) {
        Ok(m) => Box::into_raw(Box::new(m)) as *mut c_void,
        Err(_) => std::ptr::null_mut(),
    }
}

/// Releases the handle (and its process slot).  NULL is a no-op.
///
/// # Safety
/// `h` must be NULL or a handle from `mpf_ipc_create`/`mpf_ipc_attach`,
/// not used after this call.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_detach(h: *mut c_void) {
    if !h.is_null() {
        drop(Box::from_raw(h as *mut IpcMpf));
    }
}

/// This process's MPF pid (its heartbeat-slot index), or a negative
/// status.
///
/// # Safety
/// `h` must be a valid handle.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_pid(h: *mut c_void) -> c_int {
    match handle(h) {
        Ok(m) => m.pid() as c_int,
        Err(code) => code,
    }
}

/// `open_LNVC_send`; returns the conversation id (≥ 0) or a negative
/// status.
///
/// # Safety
/// `h` must be a valid handle; `lnvc_name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_open_send(h: *mut c_void, lnvc_name: *const c_char) -> c_longlong {
    let m = match handle(h) {
        Ok(m) => m,
        Err(code) => return code as c_longlong,
    };
    let name = match name_arg(lnvc_name) {
        Ok(n) => n,
        Err(code) => return code as c_longlong,
    };
    match m.open_send(name) {
        Ok(id) => id.raw() as c_longlong,
        Err(e) => e.status_code() as c_longlong,
    }
}

/// `open_LNVC_receive` with `protocol` 0 = FCFS, 1 = BROADCAST.
///
/// # Safety
/// `h` must be a valid handle; `lnvc_name` a valid NUL-terminated string.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_open_receive(
    h: *mut c_void,
    lnvc_name: *const c_char,
    protocol: c_int,
) -> c_longlong {
    let m = match handle(h) {
        Ok(m) => m,
        Err(code) => return code as c_longlong,
    };
    let name = match name_arg(lnvc_name) {
        Ok(n) => n,
        Err(code) => return code as c_longlong,
    };
    let protocol = match protocol {
        0 => Protocol::Fcfs,
        1 => Protocol::Broadcast,
        _ => return MpfError::ProtocolConflict.status_code() as c_longlong,
    };
    match m.open_receive(name, protocol) {
        Ok(id) => id.raw() as c_longlong,
        Err(e) => e.status_code() as c_longlong,
    }
}

/// `close_LNVC_send`.
///
/// # Safety
/// `h` must be a valid handle.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_close_send(h: *mut c_void, lnvc_id: c_longlong) -> c_int {
    match handle(h) {
        Ok(m) => status(m.close_send(IpcLnvcId::from_raw(lnvc_id as u64))),
        Err(code) => code,
    }
}

/// `close_LNVC_receive`.
///
/// # Safety
/// `h` must be a valid handle.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_close_receive(h: *mut c_void, lnvc_id: c_longlong) -> c_int {
    match handle(h) {
        Ok(m) => status(m.close_receive(IpcLnvcId::from_raw(lnvc_id as u64))),
        Err(code) => code,
    }
}

/// `message_send`.
///
/// # Safety
/// `h` must be a valid handle; `buf` must point to `len` readable bytes
/// (NULL allowed only when `len == 0`).
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_message_send(
    h: *mut c_void,
    lnvc_id: c_longlong,
    buf: *const u8,
    len: c_long,
) -> c_int {
    let m = match handle(h) {
        Ok(m) => m,
        Err(code) => return code,
    };
    if len < 0 || (buf.is_null() && len != 0) {
        return MpfError::MessageTooLarge { len: 0, max: 0 }.status_code();
    }
    let payload = if len == 0 {
        &[][..]
    } else {
        std::slice::from_raw_parts(buf, len as usize)
    };
    status(m.message_send(IpcLnvcId::from_raw(lnvc_id as u64), payload))
}

/// Blocking `message_receive`; returns the delivered byte count (≥ 0) or
/// a negative status.
///
/// # Safety
/// `h` must be a valid handle; `buf` must point to `cap` writable bytes.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_message_receive(
    h: *mut c_void,
    lnvc_id: c_longlong,
    buf: *mut u8,
    cap: c_long,
) -> c_long {
    let m = match handle(h) {
        Ok(m) => m,
        Err(code) => return code as c_long,
    };
    if cap < 0 || (buf.is_null() && cap != 0) {
        return MpfError::BufferTooSmall { needed: 0 }.status_code() as c_long;
    }
    let out = if cap == 0 {
        &mut [][..]
    } else {
        std::slice::from_raw_parts_mut(buf, cap as usize)
    };
    match m.message_receive(IpcLnvcId::from_raw(lnvc_id as u64), out) {
        Ok(n) => n as c_long,
        Err(e) => e.status_code() as c_long,
    }
}

/// `check_receive`: 1 when a message is deliverable, 0 when not, or a
/// negative status.
///
/// # Safety
/// `h` must be a valid handle.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_check_receive(h: *mut c_void, lnvc_id: c_longlong) -> c_int {
    match handle(h) {
        Ok(m) => match m.check_receive(IpcLnvcId::from_raw(lnvc_id as u64)) {
            Ok(ready) => ready as c_int,
            Err(e) => e.status_code(),
        },
        Err(code) => code,
    }
}

/// Runs a liveness sweep; returns the number of newly-found dead peers
/// or a negative status.
///
/// # Safety
/// `h` must be a valid handle.
#[no_mangle]
pub unsafe extern "C" fn mpf_ipc_sweep(h: *mut c_void) -> c_int {
    match handle(h) {
        Ok(m) => m.sweep_dead_peers() as c_int,
        Err(code) => code,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(s: &str) -> std::ffi::CString {
        std::ffi::CString::new(s).unwrap()
    }

    #[test]
    fn ffi_roundtrip_over_a_real_region() {
        let region = c("ffi-roundtrip");
        unsafe {
            let h = mpf_ipc_create(region.as_ptr(), 4, 4);
            assert!(!h.is_null());
            assert_eq!(mpf_ipc_pid(h), 0);
            let name = c("ffi:pipe");
            let tx = mpf_ipc_open_send(h, name.as_ptr());
            assert!(tx >= 0, "open_send -> {tx}");
            let rx = mpf_ipc_open_receive(h, name.as_ptr(), 0);
            assert!(rx >= 0, "open_receive -> {rx}");
            assert_eq!(mpf_ipc_check_receive(h, rx), 0);
            let payload = b"over the C ABI";
            assert_eq!(
                mpf_ipc_message_send(h, tx, payload.as_ptr(), payload.len() as c_long),
                0
            );
            assert_eq!(mpf_ipc_check_receive(h, rx), 1);
            let mut buf = [0u8; 64];
            let n = mpf_ipc_message_receive(h, rx, buf.as_mut_ptr(), buf.len() as c_long);
            assert_eq!(n as usize, payload.len());
            assert_eq!(&buf[..n as usize], payload);
            assert_eq!(mpf_ipc_close_send(h, tx), 0);
            assert_eq!(mpf_ipc_close_receive(h, rx), 0);
            mpf_ipc_detach(h);
        }
    }

    #[test]
    fn ffi_rejects_nulls_and_bad_ids() {
        unsafe {
            assert!(mpf_ipc_attach(std::ptr::null()).is_null());
            assert_eq!(mpf_ipc_pid(std::ptr::null_mut()), bad_handle());
            let region = c("ffi-badid");
            let h = mpf_ipc_create(region.as_ptr(), 2, 2);
            assert!(!h.is_null());
            let bogus = IpcLnvcId::from_raw(7 << 32 | 1).raw() as c_longlong;
            assert_eq!(
                mpf_ipc_close_send(h, bogus),
                MpfError::UnknownLnvc.status_code()
            );
            mpf_ipc_detach(h);
        }
    }
}
