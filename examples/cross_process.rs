//! Two genuinely separate OS processes talking through one MPF region.
//!
//! The parent creates a named shared-memory region, then re-executes
//! this binary twice with `--worker`; each worker process attaches by
//! name only.  Workers send FCFS requests up to the parent, the parent
//! broadcasts one announcement down to all workers — the paper's two
//! delivery protocols, across real address-space boundaries.
//!
//! Run: `cargo run --example cross_process`

use std::process::Command;
use std::time::Duration;

use mpf_repro::ipc::IpcMpf;
use mpf_repro::mpf::{MpfConfig, Protocol};

const REGION_ENV: &str = "MPF_EXAMPLE_REGION";
const WORKERS: usize = 2;

fn worker() {
    let region = std::env::var(REGION_ENV).expect("worker needs the region name");
    // All a worker knows is the region's name; attach() blocks until the
    // creator has finished carving (the header's init barrier).
    let m = IpcMpf::attach(&region).expect("attach");
    let requests = m.open_send("requests").expect("open_send");
    let announce = m
        .open_receive("announcements", Protocol::Broadcast)
        .expect("open_receive");

    m.message_send(
        requests,
        format!("hello from MPF pid {}", m.pid()).as_bytes(),
    )
    .expect("send request");

    let mut buf = [0u8; 256];
    let n = m
        .message_receive_timeout(announce, &mut buf, Duration::from_secs(10))
        .expect("receive broadcast");
    println!(
        "[worker {} / OS pid {}] got broadcast: {:?}",
        m.pid(),
        std::process::id(),
        std::str::from_utf8(&buf[..n]).unwrap()
    );
}

fn main() {
    if std::env::args().any(|a| a == "--worker") {
        return worker();
    }

    let region = format!("example-{}", std::process::id());
    let cfg = MpfConfig::new(4, 4);
    let m = IpcMpf::create(&region, &cfg).expect("create region");
    println!(
        "[parent {} / OS pid {}] created region {:?} ({} bytes)",
        m.pid(),
        std::process::id(),
        region,
        m.region_bytes()
    );

    let requests = m
        .open_receive("requests", Protocol::Fcfs)
        .expect("open_receive");
    let announce = m.open_send("announcements").expect("open_send");

    let exe = std::env::current_exe().expect("current_exe");
    let children: Vec<_> = (0..WORKERS)
        .map(|_| {
            Command::new(&exe)
                .arg("--worker")
                .env(REGION_ENV, &region)
                .spawn()
                .expect("spawn worker")
        })
        .collect();

    // FCFS: each worker's request is delivered exactly once.
    let mut buf = [0u8; 256];
    for _ in 0..WORKERS {
        let n = m
            .message_receive_timeout(requests, &mut buf, Duration::from_secs(10))
            .expect("receive request");
        println!(
            "[parent] request: {:?}",
            std::str::from_utf8(&buf[..n]).unwrap()
        );
    }

    // BROADCAST: one send, every connected worker sees it.
    m.message_send(announce, b"work's done, everyone go home")
        .expect("broadcast");

    for mut c in children {
        assert!(c.wait().expect("wait").success());
    }
    println!("[parent] all workers exited cleanly");
}
