//! The paper's second application study: the elliptic PDE solver ported
//! from a hypercube (§4, Figure 8).
//!
//! Solves Poisson's equation on the unit square with SOR, partitioning the
//! grid into N×N subgrids whose boundaries are exchanged over FCFS LNVCs
//! each iteration, with convergence control broadcast by a monitor.
//!
//! ```sh
//! cargo run --release --example sor_poisson [grid] [n]
//! ```

use std::time::Instant;

use mpf_apps::grid::{solve_sequential, Grid};
use mpf_apps::sor::{solve_mpf, solve_shared};

fn main() {
    let mut args = std::env::args().skip(1);
    let p: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(33);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(2);

    println!("Poisson on a {p}x{p} interior grid, {n}x{n} worker processes + monitor");

    let t = Instant::now();
    let mut seq = Grid::zeros(p);
    let seq_iters = solve_sequential(&mut seq, 1e-9, 20_000);
    println!(
        "sequential SOR     : {seq_iters:5} iterations, error vs analytic {:.3e}, {:?}",
        seq.error_vs_analytic(),
        t.elapsed()
    );

    let t = Instant::now();
    let mpf_run = solve_mpf(p, n, 1e-9, 20_000);
    println!(
        "MPF {n}x{n} block SOR  : {:5} iterations, error vs analytic {:.3e}, {:?}",
        mpf_run.iters,
        mpf_run.grid.error_vs_analytic(),
        t.elapsed()
    );

    let t = Instant::now();
    let shm_run = solve_shared(p, n * n, 1e-9, 20_000);
    println!(
        "shared red-black   : {:5} iterations, error vs analytic {:.3e}, {:?}",
        shm_run.iters,
        shm_run.grid.error_vs_analytic(),
        t.elapsed()
    );

    let h = 1.0 / (p + 1) as f64;
    println!("(discretization error floor is O(h^2) = {:.3e})", h * h);
    assert!(mpf_run.grid.error_vs_analytic() < 10.0 * h * h);
}
