//! Request/reply (RPC) over LNVCs: a service conversation shared by many
//! clients, with per-client reply conversations — the standard pattern
//! for building client/server programs on the MPF model.
//!
//! Demonstrates two properties of the model at once:
//! * many senders on one FCFS conversation (clients) with a pool of
//!   servers splitting the load, and
//! * dynamically named conversations (each client names its own reply
//!   channel, and servers join it just long enough to answer — LNVCs are
//!   created on first open and deleted on last close).
//!
//! ```sh
//! cargo run --example request_reply
//! ```

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};

const CLIENTS: usize = 4;
const SERVERS: usize = 2;
const REQUESTS_PER_CLIENT: u32 = 8;

fn main() {
    let mpf_owned = Mpf::init(MpfConfig::new(32, 16)).expect("init");
    let mpf = &mpf_owned;

    // All receive connections on the service conversation are opened
    // before any client thread exists.  Two reasons (both §1/§3.2 model
    // semantics): the auditor's broadcast ear sees only messages sent
    // after it joins, and a request sent while *only* broadcast receivers
    // are connected owes no FCFS delivery — a server joining later would
    // never see it.
    let controller_pid = ProcessId::from_index(CLIENTS + SERVERS);
    let probe = mpf
        .receiver(controller_pid, "service", Protocol::Broadcast)
        .expect("ctl probe");
    let server_rxs: Vec<_> = (0..SERVERS)
        .map(|srv| {
            mpf.receiver(
                ProcessId::from_index(CLIENTS + srv),
                "service",
                Protocol::Fcfs,
            )
            .expect("service rx")
        })
        .collect();

    std::thread::scope(|s| {
        for c in 0..CLIENTS {
            s.spawn(move || {
                let me = ProcessId::from_index(c);
                let reply_name = format!("reply:{c}");
                // Open our reply ear before sending, so no answer is lost.
                let reply_rx = mpf
                    .receiver(me, &reply_name, Protocol::Fcfs)
                    .expect("reply rx");
                let svc = mpf.sender(me, "service").expect("service tx");
                for i in 0..REQUESTS_PER_CLIENT {
                    // Request = client id, then the operand to square.
                    let mut req = Vec::new();
                    req.extend_from_slice(&(c as u32).to_le_bytes());
                    req.extend_from_slice(&i.to_le_bytes());
                    svc.send(&req).expect("request");
                    let reply = reply_rx.recv_vec().expect("reply");
                    let v = u32::from_le_bytes(reply.as_slice().try_into().expect("4 bytes"));
                    assert_eq!(v, i * i, "client {c} got a wrong answer");
                }
                println!("client {c}: {REQUESTS_PER_CLIENT} calls answered correctly");
            });
        }

        for (srv, rx) in server_rxs.into_iter().enumerate() {
            s.spawn(move || {
                let me = ProcessId::from_index(CLIENTS + srv);
                let mut served = 0;
                loop {
                    let req = rx.recv_vec().expect("take request");
                    if req.is_empty() {
                        break;
                    }
                    let client = u32::from_le_bytes(req[..4].try_into().expect("4"));
                    let operand = u32::from_le_bytes(req[4..].try_into().expect("4"));
                    // Join the client's reply conversation only to answer.
                    let reply = mpf
                        .sender(me, &format!("reply:{client}"))
                        .expect("reply tx");
                    reply
                        .send(&(operand * operand).to_le_bytes())
                        .expect("answer");
                    served += 1;
                    // `reply` drops here: the server leaves; the
                    // conversation survives because the client still holds
                    // its receive connection.
                }
                println!("server {srv}: served {served} requests");
            });
        }

        // Controller: shuts the servers down after the last request.  It
        // audits the service conversation with a BROADCAST ear (every
        // request is delivered to one FCFS server *and* to the auditor),
        // counts requests, and poisons the servers when all clients are
        // accounted for — mixed protocols on one LNVC doing real work.
        let probe = probe;
        s.spawn(move || {
            let svc = mpf.sender(controller_pid, "service").expect("ctl tx");
            let expected = (CLIENTS as u32 * REQUESTS_PER_CLIENT) as usize;
            for _ in 0..expected {
                let req = probe.recv_vec().expect("audit");
                assert_eq!(req.len(), 8, "auditor sees every well-formed request");
            }
            // Every request was *sent*; each client blocks on its reply
            // before sending the next, so after the auditor has seen the
            // final request the servers can be poisoned: FIFO order
            // guarantees the poisons queue behind it.
            for _ in 0..SERVERS {
                svc.send(&[]).expect("poison");
            }
        });
    });
    println!(
        "rpc demo complete; live conversations: {}",
        mpf.live_lnvcs()
    );
}
