//! Request/reply over LNVCs — now a thin wrapper around the `mpf-serve`
//! service layer, which packages the pattern this example used to build
//! by hand (shared FCFS request conversation, per-client reply
//! conversations, a control plane for shutdown).
//!
//! What the service layer adds over the hand-rolled version:
//! * a [`Server`] anchor so the shared conversations survive worker and
//!   client churn (LNVCs die with their last connection otherwise),
//! * a BROADCAST control plane — the orderly shutdown below replaces the
//!   old empty-message poison pill,
//! * per-call timeout/retry and duplicate suppression in [`Client`].
//!
//! ```sh
//! cargo run --example request_reply
//! ```

use std::sync::Arc;

use mpf::{Mpf, MpfConfig, ProcessId};
use mpf_aio::AsyncMpf;
use mpf_serve::{run_worker, Client, ClientCfg, Server, ThreadTransport, WorkerCfg};

const CLIENTS: u32 = 4;
const WORKERS: u32 = 2;
const REQUESTS_PER_CLIENT: u64 = 8;
const SVC: &str = "square";

fn main() {
    let mpf = Arc::new(Mpf::init(MpfConfig::new(32, 16)).expect("init"));

    // The server anchors the service's shared conversations (request
    // queue, control plane, ack channel) before any worker or client
    // exists, so nothing is lost to late joiners.
    let server_t = Arc::new(ThreadTransport(AsyncMpf::new(
        Arc::clone(&mpf),
        ProcessId::from_index(0),
    )));
    let mut server = Server::new(Arc::clone(&server_t), SVC).expect("anchor service");

    let mut workers = Vec::new();
    for w in 0..WORKERS {
        let m = Arc::clone(&mpf);
        workers.push(std::thread::spawn(move || {
            let t = ThreadTransport(AsyncMpf::new(m, ProcessId::from_index(1 + w as usize)));
            // The handler squares a little-endian u32.
            let stats = run_worker(&t, &WorkerCfg::new(SVC, w + 1), |req| {
                let v = u32::from_le_bytes(req[..4].try_into().expect("4 bytes"));
                (v * v).to_le_bytes().to_vec()
            })
            .expect("worker");
            println!("worker {}: served {} requests", w + 1, stats.served);
        }));
    }

    let mut clients = Vec::new();
    for c in 0..CLIENTS {
        let m = Arc::clone(&mpf);
        clients.push(std::thread::spawn(move || {
            let pid = ProcessId::from_index(1 + WORKERS as usize + c as usize);
            let t = Arc::new(ThreadTransport(AsyncMpf::new(m, pid)));
            let mut client = Client::connect(t, ClientCfg::new(SVC, c + 1)).expect("connect");
            for i in 0..REQUESTS_PER_CLIENT {
                let reply = client.call(&(i as u32).to_le_bytes()).expect("call");
                let v = u32::from_le_bytes(reply[..4].try_into().expect("4 bytes"));
                assert_eq!(v, (i * i) as u32, "client {c} got a wrong answer");
            }
            client.close();
            println!("client {c}: {REQUESTS_PER_CLIENT} calls answered correctly");
        }));
    }

    // Pump worker registrations and serve acks while traffic runs.
    while clients.iter().any(|h| !h.is_finished()) {
        let _ = server.poll_acks(Some(
            std::time::Instant::now() + std::time::Duration::from_millis(10),
        ));
    }
    for h in clients {
        h.join().expect("client");
    }

    // Orderly shutdown over the control plane: workers flush the queue,
    // say goodbye, and exit.
    let report = server
        .shutdown(Some(std::time::Duration::from_secs(5)))
        .expect("shutdown");
    assert!(report.stragglers.is_empty(), "all workers said BYE");
    for h in workers {
        h.join().expect("worker");
    }
    drop(server_t);

    println!(
        "rpc demo complete; live conversations: {}",
        mpf.live_lnvcs()
    );
}
