//! Prototyping with the structured layer: topologies and collectives
//! (`mpf-proto`) instead of raw primitives.
//!
//! A ring of workers runs a distributed mean/max computation over locally
//! generated samples using only message-passing collectives — the style
//! of program the paper says should "be easily prototyped in the MPF
//! environment", written without touching an LNVC by hand.
//!
//! ```sh
//! cargo run --example collectives [ranks]
//! ```

use mpf::{Mpf, MpfConfig};
use mpf_proto::collectives::{allreduce_sum_f64, barrier, broadcast, gather, reduce_f64, scatter};
use mpf_proto::group::CommGroup;
use mpf_proto::topology::Topology;
use mpf_shm::process::run_processes_collect;

fn main() {
    let ranks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let mpf = Mpf::init(
        MpfConfig::new((4 * ranks * ranks + 16) as u32, ranks as u32)
            .with_max_connections((8 * ranks * ranks + 64) as u32),
    )
    .expect("init");

    let ring = Topology::Ring { size: ranks };
    println!(
        "{ranks}-rank ring (diameter {}), running gather/scatter/reduce/allreduce",
        ring.diameter()
    );

    let reports = run_processes_collect(ranks, |pid| {
        let g = CommGroup::create(&mpf, pid, pid.index(), ranks, "demo").expect("join group");
        let me = g.rank();

        // Rank 0 scatters per-rank seeds.
        let seeds: Option<Vec<Vec<u8>>> =
            (me == 0).then(|| (0..ranks).map(|r| vec![(r * 17 + 3) as u8]).collect());
        let seed = scatter(&g, 0, seeds.as_deref()).expect("scatter")[0] as f64;

        // Local "work": a few deterministic samples from the seed.
        let samples: Vec<f64> = (1..=8).map(|i| seed + i as f64).collect();
        let local_sum: f64 = samples.iter().sum();
        let local_max = samples.iter().cloned().fold(f64::MIN, f64::max);

        // Global mean via all-reduce; global max via reduce + broadcast.
        let total = allreduce_sum_f64(&g, &[local_sum, samples.len() as f64]).expect("allreduce");
        let mean = total[0] / total[1];
        let max_at_root = reduce_f64(&g, 0, &[local_max], f64::max).expect("reduce");
        let max_wire = if me == 0 {
            max_at_root[0].to_le_bytes().to_vec()
        } else {
            Vec::new()
        };
        let global_max = f64::from_le_bytes(
            broadcast(&g, 0, &max_wire).expect("broadcast")[..8]
                .try_into()
                .expect("8 bytes"),
        );

        barrier(&g).expect("barrier");

        // Rank 0 gathers one status line per rank.
        let line = format!("rank {me}: seed {seed:.0}, mean {mean:.3}, max {global_max:.0}");
        let gathered = gather(&g, 0, line.as_bytes()).expect("gather");
        if me == 0 {
            for report in &gathered {
                println!("  {}", String::from_utf8_lossy(report));
            }
        }
        (mean, global_max)
    });

    let (mean0, max0) = reports[0];
    assert!(
        reports.iter().all(|&(m, x)| m == mean0 && x == max0),
        "every rank must agree on the global results"
    );
    println!("all ranks agree: mean {mean0:.3}, max {max0:.0}");
}
