//! The paper's first application study: message-based Gauss-Jordan
//! elimination with partial pivoting (§4, Figure 7).
//!
//! Solves a random diagonally dominant system three ways — sequential,
//! MPF message passing (workers + arbiter over four LNVCs), and the
//! shared-memory baseline — and cross-checks the answers.
//!
//! ```sh
//! cargo run --release --example gauss_jordan [n] [workers]
//! ```

use std::time::Instant;

use mpf_apps::gauss_jordan::{solve_mpf, solve_sequential, solve_shared};
use mpf_apps::linalg::{random_rhs, residual_inf, Matrix};

fn main() {
    let mut args = std::env::args().skip(1);
    let n: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(64);
    let workers: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("solving a {n}x{n} system with {workers} workers + 1 arbiter");
    let a = Matrix::random_diag_dominant(n, 2026);
    let b = random_rhs(n, 2026);

    let t = Instant::now();
    let x_seq = solve_sequential(&a, &b);
    let t_seq = t.elapsed();

    let t = Instant::now();
    let x_mpf = solve_mpf(&a, &b, workers);
    let t_mpf = t.elapsed();

    let t = Instant::now();
    let x_shm = solve_shared(&a, &b, workers);
    let t_shm = t.elapsed();

    for (label, x, took) in [
        ("sequential          ", &x_seq, t_seq),
        ("MPF message passing ", &x_mpf, t_mpf),
        ("shared memory       ", &x_shm, t_shm),
    ] {
        let r = residual_inf(&a, x, &b);
        println!("{label} residual = {r:.3e}   time = {took:?}");
        assert!(r < 1e-6, "{label} residual too large");
    }

    let worst = x_seq
        .iter()
        .zip(&x_mpf)
        .map(|(s, p)| (s - p).abs())
        .fold(0.0f64, f64::max);
    println!("max |x_seq - x_mpf| = {worst:.3e}");
    println!("note: wall-clock speedup requires a multi-core host; on the");
    println!("Balance 21000 model, run: cargo run -p mpf-bench --bin fig7_gauss");
}
