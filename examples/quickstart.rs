//! Quickstart: two processes, one conversation.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};

fn main() {
    // The paper's init(maxLNVC's, max_processes).
    let mpf = Mpf::init(MpfConfig::new(8, 4)).expect("facility init");
    println!(
        "shared region: ~{} KiB estimated",
        mpf.config().estimated_shared_bytes() / 1024
    );

    let alice = ProcessId::from_index(0);
    let bob = ProcessId::from_index(1);

    // Bob joins the conversation before Alice can possibly leave it.
    // (Paper §3.2: if the last participant closes, the conversation — and
    // any unread messages — are discarded.  Joining first makes the
    // rendezvous safe no matter how the threads are scheduled.)
    let rx = mpf
        .receiver(bob, "hallway", Protocol::Fcfs)
        .expect("open_receive");

    std::thread::scope(|s| {
        s.spawn(|| {
            // open_send creates the conversation if it does not exist.
            let tx = mpf.sender(alice, "hallway").expect("open_send");
            tx.send(b"hello bob, meet me at the bus").expect("send");
            tx.send(b"(the 80 MB/s one)").expect("send");
            // Sender leaves; the conversation lives while Bob is joined.
        });
        s.spawn(|| {
            for _ in 0..2 {
                let msg = rx.recv_vec().expect("message_receive");
                println!("bob got: {}", String::from_utf8_lossy(&msg));
            }
        });
    });
    drop(rx);

    let stats = mpf.stats().snapshot();
    println!(
        "sends={} receives={} bytes_in={} bytes_out={}",
        stats.sends, stats.receives, stats.bytes_in, stats.bytes_out
    );
    assert_eq!(mpf.live_lnvcs(), 0, "all connections closed on drop");
}
