//! The conversation model in full: participants join and leave a named
//! LNVC at will; FCFS receivers share the work, BROADCAST receivers audit
//! everything (paper §1, Figure 1).
//!
//! A dispatcher posts jobs into the "jobs" conversation.  Two FCFS workers
//! split them (each job delivered exactly once); one BROADCAST auditor
//! sees every job.  Halfway through, a third worker joins — demonstrating
//! dynamic membership — and poison messages let everyone leave cleanly.
//!
//! ```sh
//! cargo run --example conversation
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};

const JOBS: usize = 12;
const WORKERS: usize = 3;

fn main() {
    let mpf = &*Box::leak(Box::new(Mpf::init(MpfConfig::new(8, 8)).expect("init")));
    let done = &*Box::leak(Box::new(AtomicUsize::new(0)));

    // The auditor joins before any job can be posted: broadcast receivers
    // only see messages sent after they join, and its open connection also
    // keeps the conversation alive however the threads are scheduled
    // (paper §3.2).
    let auditor_rx = mpf
        .receiver(ProcessId::from_index(5), "jobs", Protocol::Broadcast)
        .expect("auditor joins");

    std::thread::scope(|s| {
        // Auditor: BROADCAST — sees every message in time order.
        let rx = auditor_rx;
        s.spawn(move || {
            let mut seen = 0;
            loop {
                let msg = rx.recv_vec().expect("audit");
                if msg.is_empty() {
                    break;
                }
                seen += 1;
            }
            println!("auditor observed {seen} jobs (every one of them)");
            assert_eq!(seen, JOBS);
        });

        // Workers 0 and 1: FCFS — each job goes to exactly one of them.
        for w in 0..2 {
            s.spawn(move || worker(mpf, w, done));
        }

        // Dispatcher.
        s.spawn(|| {
            let me = ProcessId::from_index(4);
            let tx = mpf.sender(me, "jobs").expect("dispatcher joins");
            for job in 0..JOBS {
                if job == JOBS / 2 {
                    // Mid-stream, a late worker joins the conversation.
                    s.spawn(move || worker(mpf, 2, done));
                }
                tx.send(format!("job #{job}").as_bytes()).expect("post");
            }
            // One poison per worker (zero-length), then one for the
            // auditor's broadcast stream.
            for _ in 0..WORKERS {
                tx.send(&[]).expect("poison");
            }
        });
    });

    assert_eq!(done.load(Ordering::Relaxed), JOBS);
    println!("all {JOBS} jobs done exactly once");
}

fn worker(mpf: &Mpf, idx: usize, done: &AtomicUsize) {
    let me = ProcessId::from_index(idx);
    let rx = mpf
        .receiver(me, "jobs", Protocol::Fcfs)
        .expect("worker joins");
    let mut handled = 0;
    loop {
        let msg = rx.recv_vec().expect("take job");
        if msg.is_empty() {
            break; // poison: leave the conversation
        }
        handled += 1;
        done.fetch_add(1, Ordering::Relaxed);
    }
    println!("worker {idx} handled {handled} jobs");
}
