//! Prototyping a hypercube program on a shared-memory machine — the
//! paper's §5 claim: "Programs destined for message passing systems can be
//! easily prototyped in the MPF environment."
//!
//! Builds a d-dimensional hypercube out of LNVCs (one FCFS conversation
//! per directed edge, named by its endpoints) and runs the classic
//! recursive-doubling **all-reduce**: in round k, every node exchanges its
//! partial sum with its neighbour across dimension k.  After d rounds all
//! 2^d nodes hold the global sum — with no shared variables anywhere.
//!
//! ```sh
//! cargo run --example hypercube [dimension]
//! ```

use mpf::{Mpf, MpfConfig, Protocol};

fn edge(from: usize, to: usize) -> String {
    format!("cube:{from}->{to}")
}

fn main() {
    let d: u32 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3);
    let nodes = 1usize << d;
    println!("{d}-cube: {nodes} nodes, recursive-doubling all-reduce");

    let mpf = Mpf::init(
        MpfConfig::new((nodes * d as usize * 2) as u32 + 4, nodes as u32)
            .with_max_connections((nodes * d as usize * 4) as u32 + 64),
    )
    .expect("init");

    let results: Vec<u64> = mpf_shm::process::run_processes_collect(nodes, |pid| {
        let me = pid.index();
        // Every node contributes its own id + 1.
        let mut acc = (me + 1) as u64;
        for k in 0..d {
            let peer = me ^ (1 << k);
            // Open per-round edges; close them after the exchange — the
            // conversation lifetime matches the communication phase.
            let tx = mpf.sender(pid, &edge(me, peer)).expect("edge tx");
            let rx = mpf
                .receiver(pid, &edge(peer, me), Protocol::Fcfs)
                .expect("edge rx");
            tx.send(&acc.to_le_bytes()).expect("send partial");
            let theirs = rx.recv_vec().expect("recv partial");
            acc += u64::from_le_bytes(theirs.as_slice().try_into().expect("8 bytes"));
            // Do not close the send side before the peer has drained it:
            // closing the last connection would discard the message.  The
            // receive above synchronizes us; the peer's receive
            // synchronizes them, so dropping both ends here is safe.
            drop((tx, rx));
        }
        acc
    });

    let expected: u64 = (1..=nodes as u64).sum();
    for (node, &sum) in results.iter().enumerate() {
        assert_eq!(sum, expected, "node {node} disagrees");
    }
    println!("all {nodes} nodes converged on the global sum {expected}");
    assert_eq!(mpf.live_lnvcs(), 0);
}
