//! Hybrid parallel programming — the paper's §5: "A particularly
//! interesting benefit of a message passing facility for shared memory
//! machines is the ability to develop a program using a hybrid parallel
//! programming paradigm."
//!
//! A pipeline where each stage picks the paradigm that fits it:
//!
//! 1. two producers share a work counter through *shared memory* (an
//!    atomic — no messages needed for one word),
//! 2. items flow to the transformer over the *general LNVC* (FCFS, so the
//!    producers never coordinate),
//! 3. the transformer streams squares to the sink over the §5 *lock-free
//!    one-to-one* channel (two fixed endpoints — no locking needed),
//! 4. the sink *broadcasts* the final checksum on a control LNVC, and both
//!    producers (who kept a broadcast ear on it) verify it.
//!
//! ```sh
//! cargo run --example hybrid
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

use mpf::one2one::one2one;
use mpf::{Mpf, MpfConfig, ProcessId, Protocol};

const ITEMS: u64 = 64;

fn main() {
    let mpf_owned = Mpf::init(MpfConfig::new(8, 8)).expect("init");
    let mpf = &mpf_owned;
    let next_item = AtomicU64::new(0); // shared-memory paradigm
    let (mut o2o_tx, mut o2o_rx) = one2one(4096); // §5 lock-free variant
    let expected: u64 = (0..ITEMS).map(|v| v * v).sum();

    // The transformer's ear joins "transform" before any producer thread
    // exists, so a producer finishing (and leaving) first can never delete
    // the conversation out from under the stream (paper §3.2).
    let transform_rx = mpf
        .receiver(ProcessId::from_index(2), "transform", Protocol::Fcfs)
        .expect("transform rx");

    std::thread::scope(|s| {
        // Producers: shared counter in, FCFS LNVC out, broadcast ear on
        // the control conversation.
        for i in 0..2 {
            let next_item = &next_item;
            s.spawn(move || {
                let me = ProcessId::from_index(i);
                // Join the control conversation *before* producing so the
                // final broadcast cannot be missed (late joiners start at
                // the tail).
                let control = mpf
                    .receiver(me, "control", Protocol::Broadcast)
                    .expect("control rx");
                let tx = mpf.sender(me, "transform").expect("producer");
                let mut produced = 0;
                loop {
                    let item = next_item.fetch_add(1, Ordering::Relaxed);
                    if item >= ITEMS {
                        break;
                    }
                    produced += 1;
                    tx.send(&item.to_le_bytes()).expect("send item");
                }
                tx.send(&[]).expect("poison");
                // Shared memory handed out work; message passing reports
                // the global outcome back.
                let checksum = control.recv_vec().expect("checksum");
                let sum = u64::from_le_bytes(checksum.as_slice().try_into().expect("8 bytes"));
                println!("producer {i}: produced {produced}, verified checksum {sum}");
                assert_eq!(sum, expected);
            });
        }

        // Transformer: general LNVC in, lock-free SPSC out.  Stops after
        // both producers' poisons.
        let rx = transform_rx;
        s.spawn(move || {
            let mut poisons = 0;
            while poisons < 2 {
                let msg = rx.recv_vec().expect("recv");
                if msg.is_empty() {
                    poisons += 1;
                    continue;
                }
                let v = u64::from_le_bytes(msg.as_slice().try_into().expect("8 bytes"));
                o2o_tx.send(&(v * v).to_le_bytes()).expect("forward");
            }
            o2o_tx.send(&[]).expect("eof");
        });

        // Sink: consumes the lock-free stream, broadcasts the checksum.
        s.spawn(move || {
            let me = ProcessId::from_index(3);
            let control = mpf.sender(me, "control").expect("control tx");
            let mut buf = [0u8; 8];
            let mut sum = 0u64;
            let mut count = 0u64;
            loop {
                let n = o2o_rx.recv(&mut buf).expect("sink recv");
                if n == 0 {
                    break;
                }
                sum += u64::from_le_bytes(buf);
                count += 1;
            }
            println!("sink: {count} squares, sum = {sum}");
            assert_eq!(count, ITEMS);
            control
                .send(&sum.to_le_bytes())
                .expect("broadcast checksum");
        });
    });
    println!("hybrid pipeline finished: shared memory + LNVC + lock-free in one program");
}
