//! Facade crate for the MPF reproduction; see README.md.
//!
//! Re-exports every workspace crate under one roof so the examples and
//! cross-crate integration tests have a single dependency.

pub use mpf;
pub use mpf_apps as apps;
pub use mpf_ipc as ipc;
pub use mpf_proto as proto;
pub use mpf_shm as shm;
pub use mpf_sim as sim;
