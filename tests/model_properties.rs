//! Model-based property test: random single-threaded operation sequences
//! are executed against both the real facility and a straightforward
//! reference model of the paper's semantics; every observable result must
//! agree.
//!
//! The model encodes DESIGN.md's delivery rules directly:
//! * a message is owed one FCFS delivery iff FCFS receivers were connected
//!   at send time or nobody was connected at all;
//! * it is owed a broadcast delivery to exactly the broadcast receivers
//!   connected at send time;
//! * broadcast receivers joining later see only later messages;
//! * FCFS obligations are re-evaluated when the receiver population
//!   changes: once no FCFS receiver is connected but broadcast receivers
//!   are, untaken obligations are dropped (nobody left or joining later
//!   will ever take them — DESIGN.md "Obligation re-evaluation");
//! * closing the last connection discards the conversation and its queue.

use std::collections::HashMap;

use mpf::{Mpf, MpfConfig, MpfError, ProcessId, Protocol};
use mpf_shm::SmallRng;

const NAMES: [&str; 3] = ["alpha", "beta", "gamma"];
const PIDS: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    OpenSend {
        pid: usize,
        name: usize,
    },
    OpenRecv {
        pid: usize,
        name: usize,
        bcast: bool,
    },
    CloseSend {
        pid: usize,
        name: usize,
    },
    CloseRecv {
        pid: usize,
        name: usize,
    },
    Send {
        pid: usize,
        name: usize,
        len: usize,
    },
    TryRecv {
        pid: usize,
        name: usize,
    },
    Check {
        pid: usize,
        name: usize,
    },
}

fn random_op(rng: &mut SmallRng) -> Op {
    let pid = rng.gen_range(0..PIDS);
    let name = rng.gen_range(0..NAMES.len());
    match rng.gen_range(0..7usize) {
        0 => Op::OpenSend { pid, name },
        1 => Op::OpenRecv {
            pid,
            name,
            bcast: rng.gen_bool(0.5),
        },
        2 => Op::CloseSend { pid, name },
        3 => Op::CloseRecv { pid, name },
        4 => Op::Send {
            pid,
            name,
            len: rng.gen_range(0..100usize),
        },
        5 => Op::TryRecv { pid, name },
        _ => Op::Check { pid, name },
    }
}

/// Reference model of one conversation.
#[derive(Debug, Default)]
struct ModelLnvc {
    /// (payload, fcfs_owed, fcfs_taken, bcast_owed_to)
    msgs: Vec<ModelMsg>,
    senders: Vec<usize>,
    /// pid → (is_broadcast, cursor into `msgs` by global index)
    receivers: HashMap<usize, (bool, usize)>,
    sent_total: usize,
}

#[derive(Debug, Clone)]
struct ModelMsg {
    seq: usize,
    payload: Vec<u8>,
    needs_fcfs: bool,
    fcfs_taken: bool,
    bcast_owed: Vec<usize>,
}

impl ModelLnvc {
    fn connections(&self) -> usize {
        self.senders.len() + self.receivers.len()
    }

    /// Obligation re-evaluation after any receiver-population change: when
    /// no FCFS receiver remains but broadcast receivers keep the LNVC
    /// alive, untaken FCFS obligations can never be satisfied (broadcast
    /// joiners never see backlog) and are dropped; messages that become
    /// fully consumed disappear.
    fn reevaluate_obligations(&mut self) {
        let has_fcfs = self.receivers.values().any(|&(b, _)| !b);
        let has_bcast = self.receivers.values().any(|&(b, _)| b);
        if !has_fcfs && has_bcast {
            for m in &mut self.msgs {
                if !m.fcfs_taken {
                    m.needs_fcfs = false;
                }
            }
        }
        self.msgs
            .retain(|m| !(m.bcast_owed.is_empty() && (!m.needs_fcfs || m.fcfs_taken)));
    }

    fn next_for(&self, pid: usize) -> Option<&ModelMsg> {
        let (bcast, cursor) = *self.receivers.get(&pid)?;
        if bcast {
            self.msgs.iter().find(|m| m.seq >= cursor)
        } else {
            self.msgs.iter().find(|m| m.needs_fcfs && !m.fcfs_taken)
        }
    }
}

#[derive(Debug, Default)]
struct Model {
    lnvcs: HashMap<usize, ModelLnvc>,
}

fn payload_for(seq: usize, len: usize) -> Vec<u8> {
    (0..len).map(|i| (seq * 31 + i) as u8).collect()
}

fn run_sequence(ops: Vec<Op>) {
    let mpf = Mpf::init(
        MpfConfig::new(8, PIDS as u32)
            .with_total_blocks(4096)
            .with_max_messages(1024),
    )
    .expect("init");
    let mut model = Model::default();
    let mut ids: HashMap<usize, mpf::LnvcId> = HashMap::new();

    for op in ops {
        match op {
            Op::OpenSend { pid, name } => {
                let result = mpf.open_send(ProcessId::from_index(pid), NAMES[name]);
                let entry = model.lnvcs.entry(name).or_default();
                if entry.senders.contains(&pid) {
                    assert_eq!(result.unwrap_err(), MpfError::AlreadyConnected);
                    // A failed open on a fresh name must not leak a
                    // conversation — but `contains` implies it existed.
                } else {
                    let id = result.expect("open_send");
                    ids.insert(name, id);
                    entry.senders.push(pid);
                }
            }
            Op::OpenRecv { pid, name, bcast } => {
                let protocol = if bcast {
                    Protocol::Broadcast
                } else {
                    Protocol::Fcfs
                };
                let result = mpf.open_receive(ProcessId::from_index(pid), NAMES[name], protocol);
                let entry = model.lnvcs.entry(name).or_default();
                if let Some(&(existing_bcast, _)) = entry.receivers.get(&pid) {
                    let expected = if existing_bcast != bcast {
                        MpfError::ProtocolConflict
                    } else {
                        MpfError::AlreadyConnected
                    };
                    assert_eq!(result.unwrap_err(), expected);
                } else {
                    let id = result.expect("open_receive");
                    ids.insert(name, id);
                    entry.receivers.insert(pid, (bcast, entry.sent_total));
                    entry.reevaluate_obligations();
                }
            }
            Op::CloseSend { pid, name } => {
                let Some(&id) = ids.get(&name) else { continue };
                let result = mpf.close_send(ProcessId::from_index(pid), id);
                let Some(entry) = model.lnvcs.get_mut(&name) else {
                    assert!(result.is_err());
                    continue;
                };
                if let Some(pos) = entry.senders.iter().position(|&s| s == pid) {
                    result.expect("close_send");
                    entry.senders.remove(pos);
                    if entry.connections() == 0 {
                        model.lnvcs.remove(&name);
                        ids.remove(&name);
                    }
                } else {
                    assert!(result.is_err(), "model says {pid} has no send conn");
                }
            }
            Op::CloseRecv { pid, name } => {
                let Some(&id) = ids.get(&name) else { continue };
                let result = mpf.close_receive(ProcessId::from_index(pid), id);
                let Some(entry) = model.lnvcs.get_mut(&name) else {
                    assert!(result.is_err());
                    continue;
                };
                if let Some((bcast, cursor)) = entry.receivers.remove(&pid) {
                    result.expect("close_receive");
                    if bcast {
                        // Release this receiver's claims (the §3.2 sweep).
                        for m in &mut entry.msgs {
                            if m.seq >= cursor {
                                m.bcast_owed.retain(|&r| r != pid);
                            }
                        }
                    }
                    entry.reevaluate_obligations();
                    if entry.connections() == 0 {
                        model.lnvcs.remove(&name);
                        ids.remove(&name);
                    }
                } else {
                    assert!(result.is_err());
                }
            }
            Op::Send { pid, name, len } => {
                let Some(&id) = ids.get(&name) else { continue };
                let Some(entry) = model.lnvcs.get_mut(&name) else {
                    continue;
                };
                let seq = entry.sent_total;
                let payload = payload_for(seq, len);
                let result = mpf.message_send(ProcessId::from_index(pid), id, &payload);
                if entry.senders.contains(&pid) {
                    result.expect("message_send");
                    let bcast_owed: Vec<usize> = entry
                        .receivers
                        .iter()
                        .filter(|(_, &(b, _))| b)
                        .map(|(&r, _)| r)
                        .collect();
                    let any_receiver = !entry.receivers.is_empty();
                    entry.msgs.push(ModelMsg {
                        seq,
                        payload,
                        needs_fcfs: entry.receivers.values().any(|&(b, _)| !b) || !any_receiver,
                        fcfs_taken: false,
                        bcast_owed,
                    });
                    entry.sent_total += 1;
                } else {
                    assert_eq!(result.unwrap_err(), MpfError::NotConnected);
                }
            }
            Op::TryRecv { pid, name } => {
                let Some(&id) = ids.get(&name) else { continue };
                let mut buf = [0u8; 128];
                let result = mpf.try_message_receive(ProcessId::from_index(pid), id, &mut buf);
                let Some(entry) = model.lnvcs.get_mut(&name) else {
                    continue;
                };
                match entry.receivers.get(&pid).copied() {
                    None => assert_eq!(result.unwrap_err(), MpfError::NotConnected),
                    Some((bcast, _)) => {
                        let expected = entry.next_for(pid).cloned();
                        match (result.expect("try_recv"), expected) {
                            (Some(n), Some(m)) => {
                                assert_eq!(&buf[..n], &m.payload[..], "payload mismatch");
                                // Update the model's delivery state.
                                if bcast {
                                    entry.receivers.get_mut(&pid).expect("conn").1 = m.seq + 1;
                                    let msg = entry
                                        .msgs
                                        .iter_mut()
                                        .find(|x| x.seq == m.seq)
                                        .expect("msg");
                                    msg.bcast_owed.retain(|&r| r != pid);
                                } else {
                                    entry
                                        .msgs
                                        .iter_mut()
                                        .find(|x| x.seq == m.seq)
                                        .expect("msg")
                                        .fcfs_taken = true;
                                }
                                entry.msgs.retain(|m| {
                                    !(m.bcast_owed.is_empty() && (!m.needs_fcfs || m.fcfs_taken))
                                });
                            }
                            (None, None) => {}
                            (got, want) => panic!(
                                "delivery mismatch: real={got:?} model={}",
                                want.map(|m| format!("msg seq {}", m.seq))
                                    .unwrap_or_else(|| "none".into())
                            ),
                        }
                    }
                }
            }
            Op::Check { pid, name } => {
                let Some(&id) = ids.get(&name) else { continue };
                let result = mpf.check_receive(ProcessId::from_index(pid), id);
                let Some(entry) = model.lnvcs.get(&name) else {
                    continue;
                };
                match entry.receivers.get(&pid) {
                    None => assert_eq!(result.unwrap_err(), MpfError::NotConnected),
                    Some(_) => {
                        assert_eq!(
                            result.expect("check"),
                            entry.next_for(pid).is_some(),
                            "check_receive disagrees with the model"
                        );
                    }
                }
            }
        }
    }

    // Conservation: every conversation the model thinks is dead is dead.
    assert_eq!(mpf.live_lnvcs(), model.lnvcs.len());
}

/// 64 random operation sequences (1..120 ops each) from a fixed seed, so
/// every run exercises the same cases deterministically; on a failure the
/// panic message names the case seed for replay.
#[test]
fn facility_matches_reference_model() {
    for case in 0..64u64 {
        let mut rng = SmallRng::seed_from_u64(0x4D50_F000 + case);
        let n_ops = rng.gen_range(1..120usize);
        let ops: Vec<Op> = (0..n_ops).map(|_| random_op(&mut rng)).collect();
        let summary = format!("case {case}: {ops:?}");
        let result = std::panic::catch_unwind(|| run_sequence(ops));
        if let Err(e) = result {
            panic!("model divergence in {summary}: {e:?}");
        }
    }
}

#[test]
fn regression_open_close_reopen() {
    run_sequence(vec![
        Op::OpenSend { pid: 0, name: 0 },
        Op::Send {
            pid: 0,
            name: 0,
            len: 10,
        },
        Op::CloseSend { pid: 0, name: 0 },
        Op::OpenRecv {
            pid: 1,
            name: 0,
            bcast: false,
        },
        Op::TryRecv { pid: 1, name: 0 },
        Op::CloseRecv { pid: 1, name: 0 },
    ]);
}

#[test]
fn regression_broadcast_claim_release() {
    run_sequence(vec![
        Op::OpenSend { pid: 0, name: 1 },
        Op::OpenRecv {
            pid: 1,
            name: 1,
            bcast: true,
        },
        Op::OpenRecv {
            pid: 2,
            name: 1,
            bcast: true,
        },
        Op::Send {
            pid: 0,
            name: 1,
            len: 30,
        },
        Op::TryRecv { pid: 1, name: 1 },
        Op::CloseRecv { pid: 2, name: 1 },
        Op::Check { pid: 1, name: 1 },
        Op::CloseRecv { pid: 1, name: 1 },
        Op::CloseSend { pid: 0, name: 1 },
    ]);
}
