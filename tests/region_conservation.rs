//! Region conservation under adversarial use: whatever sequence of sends,
//! receives, partial consumption, oversized buffers and abandoned
//! conversations runs, closing everything must return every block, message
//! header, and descriptor to the free lists.

use mpf::{Mpf, MpfConfig, MpfError, ProcessId, Protocol};
use mpf_shm::SmallRng;

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

#[test]
fn random_single_threaded_traffic_conserves_blocks() {
    let cfg = MpfConfig::new(8, 6)
        .with_total_blocks(512)
        .with_block_payload(10) // paper block size: stress the chains
        .with_max_messages(256);
    let total = cfg.total_blocks;
    let mpf = Mpf::init(cfg).expect("init");
    let mut rng = SmallRng::seed_from_u64(99);

    for round in 0..50 {
        let name = format!("conv:{}", round % 3);
        let tx = mpf.sender(p(0), &name).expect("tx");
        let rx1 = mpf.receiver(p(1), &name, Protocol::Fcfs).expect("rx1");
        let rx2 = mpf.receiver(p(2), &name, Protocol::Broadcast).expect("rx2");
        let n_msgs = rng.gen_range(1..10usize);
        for _ in 0..n_msgs {
            let len = rng.gen_range(0..200usize);
            tx.send(&vec![round as u8; len]).expect("send");
        }
        // Consume a random prefix, abandon the rest.
        let consume = rng.gen_range(0..=n_msgs);
        let mut buf = [0u8; 256];
        for _ in 0..consume {
            rx1.recv(&mut buf).expect("recv");
        }
        if rng.gen_bool(0.5) {
            let _ = rx2.try_recv(&mut buf);
        }
        drop((tx, rx1, rx2)); // close all: conversation deleted
        assert_eq!(
            mpf.free_blocks(),
            total,
            "round {round}: blocks leaked after conversation deletion"
        );
        assert_eq!(mpf.live_lnvcs(), 0, "round {round}");
        mpf.assert_invariants();
    }
}

#[test]
fn exhaustion_error_path_conserves_blocks() {
    let mpf = Mpf::init(
        MpfConfig::new(2, 2)
            .with_total_blocks(8)
            .with_block_payload(10)
            .with_exhaust_policy(mpf::ExhaustPolicy::Error),
    )
    .expect("init");
    let tx = mpf.sender(p(0), "tight").expect("tx");
    let rx = mpf.receiver(p(1), "tight", Protocol::Fcfs).expect("rx");

    tx.send(&[1u8; 50]).expect("5 blocks");
    // 3 blocks left; a 40-byte message needs 4: must fail cleanly.
    assert_eq!(tx.send(&[2u8; 40]).unwrap_err(), MpfError::BlocksExhausted);
    assert_eq!(mpf.free_blocks(), 3, "failed send must roll back fully");
    tx.send(&[3u8; 30]).expect("exactly the remaining 3 blocks");
    assert_eq!(mpf.free_blocks(), 0);

    let mut buf = [0u8; 64];
    assert_eq!(rx.recv(&mut buf).expect("recv"), 50);
    assert_eq!(mpf.free_blocks(), 5, "consumption reclaims");
    assert_eq!(rx.recv(&mut buf).expect("recv"), 30);
    assert_eq!(mpf.free_blocks(), 8);
    mpf.assert_invariants();
}

#[test]
fn buffer_too_small_never_leaks_or_consumes() {
    let mpf = Mpf::init(MpfConfig::new(2, 2).with_total_blocks(64)).expect("init");
    let tx = mpf.sender(p(0), "strict").expect("tx");
    let rx = mpf.receiver(p(1), "strict", Protocol::Fcfs).expect("rx");
    tx.send(&[9u8; 100]).expect("send");
    let used = 64 - mpf.free_blocks();
    let mut tiny = [0u8; 10];
    for _ in 0..5 {
        assert!(matches!(
            rx.try_recv(&mut tiny).unwrap_err(),
            MpfError::BufferTooSmall { needed: 100 }
        ));
    }
    assert_eq!(
        64 - mpf.free_blocks(),
        used,
        "failed receives must not touch blocks"
    );
    let v = rx.recv_vec().expect("recv");
    assert_eq!(v.len(), 100);
    assert_eq!(mpf.free_blocks(), 64);
    mpf.assert_invariants();
}

#[test]
fn concurrent_traffic_conserves_after_join() {
    let cfg = MpfConfig::new(16, 9)
        .with_total_blocks(2048)
        .with_max_messages(512);
    let total = cfg.total_blocks;
    let mpf = Mpf::init(cfg).expect("init");
    std::thread::scope(|s| {
        for t in 0..4 {
            let mpf = &mpf;
            s.spawn(move || {
                let me = p(t * 2);
                let peer = p(t * 2 + 1);
                let name = format!("lane:{t}");
                let tx = mpf.sender(me, &name).expect("tx");
                let rx = mpf.receiver(peer, &name, Protocol::Fcfs).expect("rx");
                let mut rng = SmallRng::seed_from_u64(t as u64);
                let mut buf = [0u8; 512];
                for _ in 0..200 {
                    let len = rng.gen_range(0..400usize);
                    tx.send(&vec![t as u8; len]).expect("send");
                    let n = rx.recv(&mut buf).expect("recv");
                    assert_eq!(n, len);
                    assert!(buf[..n].iter().all(|&b| b == t as u8));
                }
            });
        }
    });
    assert_eq!(mpf.free_blocks(), total, "blocks leaked under concurrency");
    assert_eq!(mpf.live_lnvcs(), 0);
    let snap = mpf.stats().snapshot();
    assert_eq!(snap.sends, 800);
    assert_eq!(snap.receives, 800);
    assert_eq!(snap.bytes_in, snap.bytes_out, "loop traffic is symmetric");
    mpf.assert_invariants();
}
