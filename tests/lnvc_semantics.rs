//! Cross-crate integration tests of the LNVC delivery semantics under real
//! concurrency: exactly-once FCFS, all-see-all broadcast, FIFO
//! sub-streams, dynamic join/leave, and region conservation.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use mpf::{Mpf, MpfConfig, MpfError, ProcessId, Protocol};

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

fn facility(processes: u32) -> Mpf {
    Mpf::init(
        MpfConfig::new(32, processes)
            .with_total_blocks(8192)
            .with_max_messages(2048),
    )
    .expect("init")
}

#[test]
fn fcfs_exactly_once_under_concurrency() {
    const MSGS: u64 = 500;
    const RECEIVERS: usize = 4;
    let mpf = facility(8);
    let seen = Mutex::new(HashSet::new());
    // Open the send connection before any thread exists: the sender handle
    // outlives the scope, so the conversation cannot be deleted before the
    // receivers join (paper §3.2's lost-message hazard).
    let tx = mpf.sender(p(0), "work").expect("tx");
    std::thread::scope(|s| {
        for r in 0..RECEIVERS {
            let mpf = &mpf;
            let seen = &seen;
            s.spawn(move || {
                let rx = mpf.receiver(p(r + 1), "work", Protocol::Fcfs).expect("rx");
                loop {
                    let msg = rx.recv_vec().expect("recv");
                    if msg.is_empty() {
                        break;
                    }
                    let id = u64::from_le_bytes(msg.as_slice().try_into().expect("8 bytes"));
                    assert!(
                        seen.lock().unwrap().insert(id),
                        "message {id} delivered twice"
                    );
                }
            });
        }
        for i in 0..MSGS {
            tx.send(&i.to_le_bytes()).expect("send");
        }
        for _ in 0..RECEIVERS {
            tx.send(&[]).expect("poison");
        }
    });
    drop(tx);
    assert_eq!(seen.lock().unwrap().len(), MSGS as usize, "lost messages");
}

#[test]
fn broadcast_everyone_sees_everything_in_order() {
    const MSGS: u64 = 300;
    const RECEIVERS: usize = 3;
    let mpf = facility(8);
    let ready = mpf_shm::barrier::SpinBarrier::new(RECEIVERS as u32 + 1);
    std::thread::scope(|s| {
        for r in 0..RECEIVERS {
            let mpf = &mpf;
            let ready = &ready;
            s.spawn(move || {
                let rx = mpf
                    .receiver(p(r + 1), "feed", Protocol::Broadcast)
                    .expect("rx");
                ready.wait();
                // The virtual circuit is sequence preserving: every
                // broadcast receiver sees the identical total order.
                for expect in 0..MSGS {
                    let msg = rx.recv_vec().expect("recv");
                    let id = u64::from_le_bytes(msg.as_slice().try_into().expect("8"));
                    assert_eq!(id, expect, "receiver {r} saw out-of-order stream");
                }
            });
        }
        let tx = mpf.sender(p(0), "feed").expect("tx");
        ready.wait();
        for i in 0..MSGS {
            tx.send(&i.to_le_bytes()).expect("send");
        }
    });
    // All consumed: the whole region is back on the free lists.
    drop(mpf);
}

#[test]
fn fcfs_substream_preserves_fifo_order() {
    // One sender, many receivers: each receiver's sub-stream must be
    // monotonically increasing (time-ordering of the sub-stream, §3.1).
    const MSGS: u64 = 400;
    let mpf = facility(8);
    let tx = mpf.sender(p(0), "stream").expect("tx");
    std::thread::scope(|s| {
        for r in 0..3 {
            let mpf = &mpf;
            s.spawn(move || {
                let rx = mpf
                    .receiver(p(r + 1), "stream", Protocol::Fcfs)
                    .expect("rx");
                let mut last: i64 = -1;
                loop {
                    let msg = rx.recv_vec().expect("recv");
                    if msg.is_empty() {
                        break;
                    }
                    let id = u64::from_le_bytes(msg.as_slice().try_into().expect("8")) as i64;
                    assert!(id > last, "receiver {r}: {id} after {last}");
                    last = id;
                }
            });
        }
        for i in 0..MSGS {
            tx.send(&i.to_le_bytes()).expect("send");
        }
        for _ in 0..3 {
            tx.send(&[]).expect("poison");
        }
    });
    drop(tx);
}

#[test]
fn join_leave_churn_keeps_region_consistent() {
    let mpf = facility(16);
    let delivered = AtomicU64::new(0);
    // Open the persistent receiver before any sender thread can possibly
    // run to completion, or a fast first wave could delete the
    // conversation and discard its stream (paper §3.2).
    let persistent_rx = mpf.receiver(p(15), "churn", Protocol::Fcfs).expect("rx");
    std::thread::scope(|s| {
        // A persistent receiver keeps the conversation alive throughout.
        let mpf_ref = &mpf;
        let delivered_ref = &delivered;
        let rx = persistent_rx;
        s.spawn(move || loop {
            let msg = rx.recv_vec().expect("recv");
            if msg.is_empty() {
                break;
            }
            delivered_ref.fetch_add(1, Ordering::Relaxed);
        });
        // Senders and broadcast observers come and go.
        for wave in 0..4 {
            std::thread::scope(|inner| {
                for t in 0..4 {
                    inner.spawn(move || {
                        let pid = p(1 + wave as usize % 2 * 4 + t);
                        let tx = mpf_ref.sender(pid, "churn").expect("tx");
                        let _observer = mpf_ref
                            .receiver(pid, "churn", Protocol::Broadcast)
                            .expect("observer");
                        for i in 0..25u64 {
                            tx.send(&i.to_le_bytes()).expect("send");
                        }
                        // Observer leaves with unread messages: the close
                        // sweep (the paper's vexing problem) must release
                        // its claims.
                    });
                }
            });
        }
        let tx = mpf_ref.sender(p(14), "churn").expect("final tx");
        tx.send(&[]).expect("poison");
    });
    assert_eq!(delivered.load(Ordering::Relaxed), 4 * 4 * 25);
    // Everything closed: conversation deleted, region fully free.
    assert_eq!(mpf.live_lnvcs(), 0);
    assert_eq!(
        mpf.free_blocks(),
        mpf.config().total_blocks,
        "block leak after churn"
    );
}

#[test]
fn deleted_conversation_wakes_blocked_receiver_with_error() {
    let mpf = facility(4);
    let rx_id = mpf
        .open_receive(p(1), "doomed", Protocol::Fcfs)
        .expect("rx");
    std::thread::scope(|s| {
        let mpf = &mpf;
        let h = s.spawn(move || {
            let mut buf = [0u8; 8];
            // Blocks; then another process force-closes our connection and
            // the conversation dies under us.
            mpf.message_receive(p(1), rx_id, &mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        mpf.close_receive(p(1), rx_id).expect("force close");
        let err = h.join().unwrap().unwrap_err();
        assert!(
            matches!(err, MpfError::NotConnected | MpfError::UnknownLnvc),
            "blocked receiver must observe the close, got {err:?}"
        );
    });
}

#[test]
fn many_conversations_in_parallel() {
    let mpf = facility(16);
    std::thread::scope(|s| {
        for pair in 0..6 {
            let mpf = &mpf;
            s.spawn(move || {
                let a = p(pair * 2);
                let b = p(pair * 2 + 1);
                let name = format!("pair:{pair}");
                let tx = mpf.sender(a, &name).expect("tx");
                let rx = mpf.receiver(b, &name, Protocol::Fcfs).expect("rx");
                std::thread::scope(|inner| {
                    inner.spawn(|| {
                        for i in 0..200u32 {
                            tx.send(&i.to_le_bytes()).expect("send");
                        }
                    });
                    inner.spawn(|| {
                        let mut buf = [0u8; 4];
                        for i in 0..200u32 {
                            rx.recv(&mut buf).expect("recv");
                            assert_eq!(u32::from_le_bytes(buf), i);
                        }
                    });
                });
            });
        }
    });
    assert_eq!(mpf.live_lnvcs(), 0);
}
