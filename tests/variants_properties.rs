//! Property tests for the §5 restricted variants: the lock-free
//! one-to-one channel and the synchronous rendezvous must deliver
//! arbitrary message sequences byte-exactly and in order.

use proptest::prelude::*;

use mpf::one2one::one2one;
use mpf::sync_channel::Rendezvous;

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// One-to-one: any sequence of variable-length messages survives the
    /// framing and ring wraparound, in order, byte-exact (single thread:
    /// interleaved send/recv with bounded occupancy).
    #[test]
    fn one2one_interleaved_roundtrip(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..100), 1..60),
        drain_every in 1usize..5,
    ) {
        let (mut tx, mut rx) = one2one(1024);
        let mut pending: std::collections::VecDeque<Vec<u8>> = Default::default();
        let mut buf = [0u8; 128];
        for (i, msg) in msgs.iter().enumerate() {
            // Send with backpressure: drain when the ring refuses.
            while !tx.try_send(msg).expect("size ok") {
                let expected = pending.pop_front().expect("ring full implies pending");
                let n = rx.try_recv(&mut buf).expect("recv")
                    .expect("model says a message is queued");
                prop_assert_eq!(&buf[..n], &expected[..]);
            }
            pending.push_back(msg.clone());
            if i % drain_every == 0 {
                if let Some(expected) = pending.pop_front() {
                    let n = rx.try_recv(&mut buf).expect("recv").expect("queued");
                    prop_assert_eq!(&buf[..n], &expected[..]);
                }
            }
        }
        while let Some(expected) = pending.pop_front() {
            let n = rx.try_recv(&mut buf).expect("recv").expect("queued");
            prop_assert_eq!(&buf[..n], &expected[..]);
        }
        prop_assert_eq!(rx.try_recv(&mut buf).expect("recv"), None);
    }

    /// Rendezvous: a cross-thread stream of arbitrary messages arrives
    /// complete, in order, byte-exact — synchronous semantics make the
    /// interleaving deterministic per message.
    #[test]
    fn rendezvous_stream_roundtrip(
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20),
    ) {
        let r = Rendezvous::default();
        let sent = msgs.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                for m in &sent {
                    r.send(m);
                }
            });
            let mut buf = [0u8; 64];
            for m in &msgs {
                let n = r.recv(&mut buf).expect("recv");
                assert_eq!(&buf[..n], &m[..]);
            }
        });
    }

    /// The facility's scatter/gather across 10-byte blocks is identity for
    /// arbitrary payloads (full-stack: send through a real conversation).
    #[test]
    fn lnvc_payload_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..600)) {
        use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
        let mpf = Mpf::init(
            MpfConfig::new(2, 2).with_block_payload(10).with_total_blocks(256),
        ).expect("init");
        let p0 = ProcessId::from_index(0);
        let tx = mpf.sender(p0, "prop").expect("tx");
        let rx = mpf.receiver(p0, "prop", Protocol::Fcfs).expect("rx");
        tx.send(&payload).expect("send");
        let got = rx.recv_vec().expect("recv");
        prop_assert_eq!(got, payload);
        prop_assert_eq!(mpf.free_blocks(), 256);
    }
}
