//! Property tests for the §5 restricted variants: the lock-free
//! one-to-one channel and the synchronous rendezvous must deliver
//! arbitrary message sequences byte-exactly and in order.  Cases are
//! generated from fixed seeds (deterministic; the case index is in every
//! assertion message for replay).

use mpf::one2one::one2one;
use mpf::sync_channel::Rendezvous;
use mpf_shm::SmallRng;

fn random_msg(rng: &mut SmallRng, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..max_len);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

/// One-to-one: any sequence of variable-length messages survives the
/// framing and ring wraparound, in order, byte-exact (single thread:
/// interleaved send/recv with bounded occupancy).
#[test]
fn one2one_interleaved_roundtrip() {
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x121_0000 + case);
        let n_msgs = rng.gen_range(1..60usize);
        let msgs: Vec<Vec<u8>> = (0..n_msgs).map(|_| random_msg(&mut rng, 100)).collect();
        let drain_every = rng.gen_range(1..5usize);

        let (mut tx, mut rx) = one2one(1024);
        let mut pending: std::collections::VecDeque<Vec<u8>> = Default::default();
        let mut buf = [0u8; 128];
        for (i, msg) in msgs.iter().enumerate() {
            // Send with backpressure: drain when the ring refuses.
            while !tx.try_send(msg).expect("size ok") {
                let expected = pending.pop_front().expect("ring full implies pending");
                let n = rx
                    .try_recv(&mut buf)
                    .expect("recv")
                    .expect("model says a message is queued");
                assert_eq!(&buf[..n], &expected[..], "case {case} msg {i}");
            }
            pending.push_back(msg.clone());
            if i % drain_every == 0 {
                if let Some(expected) = pending.pop_front() {
                    let n = rx.try_recv(&mut buf).expect("recv").expect("queued");
                    assert_eq!(&buf[..n], &expected[..], "case {case} msg {i}");
                }
            }
        }
        while let Some(expected) = pending.pop_front() {
            let n = rx.try_recv(&mut buf).expect("recv").expect("queued");
            assert_eq!(&buf[..n], &expected[..], "case {case} drain");
        }
        assert_eq!(rx.try_recv(&mut buf).expect("recv"), None, "case {case}");
    }
}

/// Rendezvous: a cross-thread stream of arbitrary messages arrives
/// complete, in order, byte-exact — synchronous semantics make the
/// interleaving deterministic per message.
#[test]
fn rendezvous_stream_roundtrip() {
    for case in 0..24u64 {
        let mut rng = SmallRng::seed_from_u64(0x5E4D_0000 + case);
        let n_msgs = rng.gen_range(1..20usize);
        let msgs: Vec<Vec<u8>> = (0..n_msgs).map(|_| random_msg(&mut rng, 64)).collect();

        let r = Rendezvous::default();
        let sent = msgs.clone();
        std::thread::scope(|s| {
            s.spawn(|| {
                for m in &sent {
                    r.send(m);
                }
            });
            let mut buf = [0u8; 64];
            for m in &msgs {
                let n = r.recv(&mut buf).expect("recv");
                assert_eq!(&buf[..n], &m[..], "case {case}");
            }
        });
    }
}

/// The facility's scatter/gather across 10-byte blocks is identity for
/// arbitrary payloads (full-stack: send through a real conversation).
#[test]
fn lnvc_payload_roundtrip() {
    use mpf::{Mpf, MpfConfig, ProcessId, Protocol};
    for case in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x14C_0000 + case);
        let payload = random_msg(&mut rng, 600);
        let mpf = Mpf::init(
            MpfConfig::new(2, 2)
                .with_block_payload(10)
                .with_total_blocks(256),
        )
        .expect("init");
        let p0 = ProcessId::from_index(0);
        let tx = mpf.sender(p0, "prop").expect("tx");
        let rx = mpf.receiver(p0, "prop", Protocol::Fcfs).expect("rx");
        tx.send(&payload).expect("send");
        let got = rx.recv_vec().expect("recv");
        assert_eq!(got, payload, "case {case}");
        assert_eq!(mpf.free_blocks(), 256, "case {case}");
    }
}
