//! Integration-level assertions that the simulated reproduction preserves
//! the paper's qualitative results — the claims EXPERIMENTS.md records.
//! Each test names the paper statement it checks.

use mpf_repro::sim::{figures, CostModel, MachineConfig};

fn setup() -> (MachineConfig, CostModel) {
    let m = MachineConfig::balance21000();
    let c = CostModel::calibrated(&m);
    (m, c)
}

#[test]
fn fig3_throughput_approaches_an_asymptote() {
    // "Although throughput increases with increasing message length, it
    // approaches an asymptote."
    let (m, c) = setup();
    let s = figures::fig3_base(&m, &c);
    let y: Vec<f64> = s.points.iter().map(|p| p.1).collect();
    let n = y.len();
    // Monotone…
    for w in y.windows(2) {
        assert!(w[1] >= w[0]);
    }
    // …with diminishing returns: the relative gain of the last step is far
    // smaller than that of the first step.
    let first_gain = y[1] / y[0];
    let last_gain = y[n - 1] / y[n - 2];
    assert!(last_gain < first_gain, "no saturation: {y:?}");
    assert!(last_gain < 1.25, "still far from the asymptote: {y:?}");
    // Magnitude: the paper's Figure 3 tops out around 25,000 bytes/sec.
    let top = y[n - 1];
    assert!(
        (15_000.0..40_000.0).contains(&top),
        "asymptote {top:.0} B/s should be near the paper's ~25 KB/s"
    );
}

#[test]
fn fig4_small_messages_decline_large_messages_hold() {
    // "The decreasing throughputs for 16-byte and 128-byte messages are
    // caused by increased LNVC contention … For larger messages, this
    // contention is masked by message copying costs."
    let (m, c) = setup();
    let series = figures::fig4_fcfs(&m, &c);
    let first = |s: &mpf_repro::sim::figures::Series| s.points.first().unwrap().1;
    let last = |s: &mpf_repro::sim::figures::Series| s.points.last().unwrap().1;
    // 16-byte curve declines from 1 receiver to 16.
    assert!(last(&series[0]) < first(&series[0]), "16B must decline");
    // 1024-byte curve stays within a modest band (sender-bound).
    let ratio = last(&series[2]) / first(&series[2]);
    assert!(
        (0.55..1.45).contains(&ratio),
        "1KB should hold steady, ratio {ratio:.2}"
    );
}

#[test]
fn fig5_broadcast_hits_the_papers_magnitude() {
    // "MPF achieved an effective throughput of 687,245 bytes per second
    // for 1024-byte messages and 16 receiving processes."
    let (m, c) = setup();
    let series = figures::fig5_broadcast(&m, &c);
    let kb = &series[2];
    let at16 = kb.points.last().unwrap().1;
    assert!(
        (343_000.0..1_375_000.0).contains(&at16),
        "16-receiver 1 KB broadcast {at16:.0} B/s should be within 2x of 687,245"
    );
    // And it grows with receivers throughout.
    for w in kb.points.windows(2) {
        assert!(w[1].1 > w[0].1, "broadcast effective throughput must grow");
    }
}

#[test]
fn fig6_paging_cliff_orders_by_message_size() {
    // "For 1024-byte messages, paging overhead increases rapidly for more
    // than 10 processes … for 256-byte messages … not … until there are 20
    // active processes."
    let (m, c) = setup();
    let series = figures::fig6_random(&m, &c, 42);
    let peak_x = |s: &mpf_repro::sim::figures::Series| {
        s.points
            .iter()
            .cloned()
            .fold(
                (0.0f64, f64::MIN),
                |acc, p| if p.1 > acc.1 { p } else { acc },
            )
            .0
    };
    let small = peak_x(&series[1]); // 8 B
    let big = peak_x(&series[4]); // 1024 B
    assert!(
        big <= small || small >= 18.0,
        "large messages must hit the cliff earlier (1KB peak at {big}, 8B at {small})"
    );
    // The 1 KB curve must actually fall after its peak.
    let kb = &series[4];
    let last = kb.points.last().unwrap().1;
    let max = kb.points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
    assert!(last < 0.95 * max, "no visible cliff in the 1KB curve");
}

#[test]
fn fig7_real_speedups_and_the_classic_balance() {
    // "Speedup is greater with larger matrices … real speedups can be
    // obtained in the MPF environment."
    let (_, c) = setup();
    let series = figures::fig7_gauss(&c);
    for s in &series {
        let best = s.points.iter().map(|p| p.1).fold(f64::MIN, f64::max);
        assert!(best > 1.0, "{}: no real speedup", s.label);
    }
    // At 16 processes, ordering follows matrix size.
    let at16: Vec<f64> = series.iter().map(|s| s.points.last().unwrap().1).collect();
    assert!(at16.windows(2).all(|w| w[0] < w[1]), "{at16:?}");
}

#[test]
fn fig8_small_problems_stop_scaling() {
    // "the computation/communication ratio can be adjusted by varying the
    // number of processors" — 65×65 keeps scaling to 4×4; 9×9 does not.
    let (_, c) = setup();
    let series = figures::fig8_sor(&c);
    let large = series[0].points.last().unwrap().1; // 65×65 at N=4
    let small = series[3].points.last().unwrap().1; // 9×9 at N=4
    assert!(large > 1.5, "65x65 should scale past 2x2 (got {large:.2})");
    assert!(small < large, "9x9 must scale worse");
}
