//! Cross-variant application tests: the three implementations of each
//! paper application (sequential, MPF message passing, shared memory)
//! must agree with each other and with ground truth.

use mpf_apps::gauss_jordan;
use mpf_apps::grid::{self, Grid};
use mpf_apps::linalg::{random_rhs, residual_inf, Matrix};
use mpf_apps::sor;

#[test]
fn gauss_jordan_three_way_agreement() {
    let n = 24;
    let a = Matrix::random_diag_dominant(n, 2024);
    let b = random_rhs(n, 2024);
    let x_seq = gauss_jordan::solve_sequential(&a, &b);
    let x_mpf = gauss_jordan::solve_mpf(&a, &b, 3);
    let x_shm = gauss_jordan::solve_shared(&a, &b, 3);
    for i in 0..n {
        assert!(
            (x_seq[i] - x_mpf[i]).abs() < 1e-8,
            "mpf differs at {i}: {} vs {}",
            x_seq[i],
            x_mpf[i]
        );
        assert!((x_seq[i] - x_shm[i]).abs() < 1e-8, "shared differs at {i}");
    }
    assert!(residual_inf(&a, &x_seq, &b) < 1e-8);
}

#[test]
fn gauss_jordan_scales_across_worker_counts() {
    let n = 20;
    let a = Matrix::random_diag_dominant(n, 55);
    let b = random_rhs(n, 55);
    let reference = gauss_jordan::solve_sequential(&a, &b);
    for workers in 1..=5 {
        let x = gauss_jordan::solve_mpf(&a, &b, workers);
        let worst = reference
            .iter()
            .zip(&x)
            .map(|(r, v)| (r - v).abs())
            .fold(0.0f64, f64::max);
        assert!(worst < 1e-7, "workers={workers} diverged by {worst}");
    }
}

#[test]
fn sor_all_variants_reach_the_analytic_solution() {
    let p = 17;
    let budget = 6000;
    let tol = 1e-9;

    let mut seq = Grid::zeros(p);
    let seq_iters = grid::solve_sequential(&mut seq, tol, budget);
    assert!(seq_iters < budget);

    let mpf_run = sor::solve_mpf(p, 2, tol, budget);
    assert!(mpf_run.iters < budget, "mpf variant did not converge");

    let shm_run = sor::solve_shared(p, 4, tol, budget);
    assert!(shm_run.iters < budget, "shared variant did not converge");

    let h2 = (1.0 / (p + 1) as f64).powi(2);
    for (label, err) in [
        ("sequential", seq.error_vs_analytic()),
        ("mpf", mpf_run.grid.error_vs_analytic()),
        ("shared", shm_run.grid.error_vs_analytic()),
    ] {
        assert!(
            err < 10.0 * h2,
            "{label} error {err} exceeds the discretization floor {h2}"
        );
    }
}

#[test]
fn sor_process_grids_agree_with_each_other() {
    let p = 9;
    let a = sor::solve_mpf(p, 1, 1e-10, 8000);
    let b = sor::solve_mpf(p, 3, 1e-10, 8000);
    let mut worst: f64 = 0.0;
    for i in 1..=p {
        for j in 1..=p {
            worst = worst.max((a.grid.get(i, j) - b.grid.get(i, j)).abs());
        }
    }
    assert!(worst < 1e-7, "1x1 and 3x3 solutions differ by {worst}");
}

#[test]
fn paper_parameter_smoke_runs() {
    // The paper's smallest figure configurations, end to end.
    let a = Matrix::random_diag_dominant(32, 1);
    let b = random_rhs(32, 1);
    let x = gauss_jordan::solve_mpf(&a, &b, 4);
    assert!(residual_inf(&a, &x, &b) < 1e-7);

    let run = sor::solve_mpf(9, 2, 1e-8, 4000);
    assert!(run.grid.error_vs_analytic() < 0.05);
}
