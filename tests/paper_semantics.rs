//! Regression tests for the *specific behaviours the paper calls out in
//! prose* — each test cites its sentence.

use mpf::{Mpf, MpfConfig, ProcessId, Protocol};

fn p(i: usize) -> ProcessId {
    ProcessId::from_index(i)
}

fn facility() -> Mpf {
    Mpf::init(MpfConfig::new(8, 8)).expect("init")
}

/// §3.2: "a sending process might want to open a send connection on an
/// LNVC, send some messages, and then close the connection.  However, if
/// none of the processes intending to receive these messages have
/// established a receiver connection before the closing of the sender
/// connection, the messages could be lost when the LNVC is removed."
#[test]
fn sender_close_before_any_receiver_loses_the_messages() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "fire-and-forget").unwrap();
    mpf.message_send(p(0), tx, b"gone").unwrap();
    mpf.close_send(p(0), tx).unwrap(); // last connection: LNVC removed

    // A receiver connecting afterwards creates a *fresh* conversation.
    let rx = mpf
        .open_receive(p(1), "fire-and-forget", Protocol::Fcfs)
        .unwrap();
    assert!(
        !mpf.check_receive(p(1), rx).unwrap(),
        "message was discarded"
    );
}

/// §3.2, the same sentence's flip side: a receiver connected *before* the
/// sender closes preserves the stream.
#[test]
fn receiver_connected_before_close_preserves_the_messages() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "kept").unwrap();
    mpf.message_send(p(0), tx, b"survives").unwrap();
    let rx = mpf.open_receive(p(1), "kept", Protocol::Fcfs).unwrap();
    mpf.close_send(p(0), tx).unwrap(); // receiver keeps the LNVC alive
    assert_eq!(mpf.message_receive_vec(p(1), rx).unwrap(), b"survives");
}

/// §2: "Although check_receive() may indicate that a message is present,
/// another process with a FCFS receive connection for lnvc_id may acquire
/// the message before the checking process can receive the message."
#[test]
fn check_receive_is_advisory_for_fcfs() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "race").unwrap();
    let r1 = mpf.open_receive(p(1), "race", Protocol::Fcfs).unwrap();
    let r2 = mpf.open_receive(p(2), "race", Protocol::Fcfs).unwrap();
    mpf.message_send(p(0), tx, b"only one").unwrap();

    assert!(mpf.check_receive(p(1), r1).unwrap(), "message is present…");
    // …but the other FCFS receiver takes it first.
    assert_eq!(mpf.message_receive_vec(p(2), r2).unwrap(), b"only one");
    let mut buf = [0u8; 16];
    assert_eq!(
        mpf.try_message_receive(p(1), r1, &mut buf).unwrap(),
        None,
        "the checked message is gone — exactly the documented race"
    );
}

/// §2: "If the receive connection is BROADCAST, the message is guaranteed
/// to be present when a message_receive() is executed."
#[test]
fn check_receive_is_a_guarantee_for_broadcast() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "firm").unwrap();
    let r1 = mpf.open_receive(p(1), "firm", Protocol::Broadcast).unwrap();
    let r2 = mpf.open_receive(p(2), "firm", Protocol::Broadcast).unwrap();
    mpf.message_send(p(0), tx, b"for all").unwrap();

    assert!(mpf.check_receive(p(1), r1).unwrap());
    // Another broadcast receiver consuming does not invalidate the check.
    assert_eq!(mpf.message_receive_vec(p(2), r2).unwrap(), b"for all");
    assert_eq!(mpf.message_receive_vec(p(1), r1).unwrap(), b"for all");
}

/// §3.1: "A time-ordered message stream will be seen by all BROADCAST
/// receiving processes.  In contrast, a FCFS receiving process will see
/// only a part of the message stream.  However, the sequence preserving
/// LNVC forces a time-ordering of this sub-stream as well."
#[test]
fn broadcast_total_order_and_fcfs_suborder_coexist() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "order").unwrap();
    let bc = mpf
        .open_receive(p(1), "order", Protocol::Broadcast)
        .unwrap();
    let f1 = mpf.open_receive(p(2), "order", Protocol::Fcfs).unwrap();
    let f2 = mpf.open_receive(p(3), "order", Protocol::Fcfs).unwrap();
    for i in 0..10u8 {
        mpf.message_send(p(0), tx, &[i]).unwrap();
    }
    // Broadcast receiver: the full stream, in order.
    for i in 0..10u8 {
        assert_eq!(mpf.message_receive_vec(p(1), bc).unwrap(), vec![i]);
    }
    // FCFS receivers alternating arbitrarily: each sub-stream ascends.
    let mut last1 = -1i16;
    let mut last2 = -1i16;
    for turn in 0..10 {
        if turn % 3 == 0 {
            let v = mpf.message_receive_vec(p(3), f2).unwrap()[0] as i16;
            assert!(v > last2);
            last2 = v;
        } else {
            let v = mpf.message_receive_vec(p(2), f1).unwrap()[0] as i16;
            assert!(v > last1);
            last1 = v;
        }
    }
}

/// §2: "If this is the last process connected to lnvc_id, the LNVC is
/// deleted and all unread messages are discarded" — including via
/// close_receive.
#[test]
fn last_receiver_close_discards_queue() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "ephemeral").unwrap();
    let rx = mpf.open_receive(p(1), "ephemeral", Protocol::Fcfs).unwrap();
    mpf.message_send(p(0), tx, &[0u8; 200]).unwrap();
    mpf.close_send(p(0), tx).unwrap();
    let free_before = mpf.free_blocks();
    mpf.close_receive(p(1), rx).unwrap(); // last connection
    assert!(mpf.free_blocks() > free_before, "queue was discarded");
    assert_eq!(mpf.live_lnvcs(), 0);
}

/// §2: "Message sending is asynchronous, allowing a process to proceed
/// before the message reaches its destination(s)."
#[test]
fn send_does_not_wait_for_a_receiver() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "async").unwrap();
    let _rx = mpf.open_receive(p(1), "async", Protocol::Fcfs).unwrap();
    // If send required a rendezvous this would deadlock single-threaded.
    for i in 0..50u8 {
        mpf.message_send(p(0), tx, &[i]).unwrap();
    }
    assert!(mpf.check_receive(p(1), _rx).unwrap());
}

/// Delivery-rule corollary (DESIGN.md): a message sent while *only*
/// broadcast receivers are connected owes no FCFS delivery — an FCFS
/// receiver joining later never sees it.  (This bit a first draft of the
/// request/reply example: clients raced ahead of the servers and their
/// requests went to the auditor alone.)
#[test]
fn broadcast_only_messages_are_not_kept_for_late_fcfs_receivers() {
    let mpf = facility();
    let tx = mpf.open_send(p(0), "aud").unwrap();
    let bc = mpf.open_receive(p(1), "aud", Protocol::Broadcast).unwrap();
    mpf.message_send(p(0), tx, b"spoken to the room").unwrap();
    // A worker joins late…
    let late = mpf.open_receive(p(2), "aud", Protocol::Fcfs).unwrap();
    assert!(
        !mpf.check_receive(p(2), late).unwrap(),
        "the broadcast-only message is not owed to the late FCFS receiver"
    );
    // …while the broadcast receiver still gets it.
    assert_eq!(
        mpf.message_receive_vec(p(1), bc).unwrap(),
        b"spoken to the room"
    );
    // Messages sent from now on (with an FCFS receiver connected) are owed.
    mpf.message_send(p(0), tx, b"task").unwrap();
    assert_eq!(mpf.message_receive_vec(p(2), late).unwrap(), b"task");
}

/// Footnote 2: "An LNVC exists only if the set of senders or receivers is
/// not null" — i.e. a receiver alone also keeps it alive, and creates it.
#[test]
fn receiver_alone_creates_and_sustains_the_conversation() {
    let mpf = facility();
    let rx = mpf
        .open_receive(p(1), "listen-first", Protocol::Broadcast)
        .unwrap();
    assert_eq!(mpf.live_lnvcs(), 1);
    let tx = mpf.open_send(p(0), "listen-first").unwrap();
    assert_eq!(tx, rx, "joined the existing conversation");
    mpf.close_receive(p(1), rx).unwrap();
    assert_eq!(mpf.live_lnvcs(), 1, "sender still holds it");
    mpf.close_send(p(0), tx).unwrap();
    assert_eq!(mpf.live_lnvcs(), 0);
}
