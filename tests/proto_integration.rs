//! Full-stack integration of the prototyping layer: topologies +
//! communicators + collectives running over the real facility.

use mpf::{Mpf, MpfConfig};
use mpf_proto::collectives::{allreduce_sum_f64, alltoall, barrier, broadcast};
use mpf_proto::group::CommGroup;
use mpf_proto::topology::Topology;
use mpf_repro::shm::process::run_processes_collect;

fn facility(procs: u32) -> Mpf {
    Mpf::init(
        MpfConfig::new(4 * procs * procs + 16, procs).with_max_connections(8 * procs * procs + 64),
    )
    .expect("init")
}

#[test]
fn hypercube_allreduce_over_comm_group() {
    // The hypercube example's algorithm, expressed with the structured
    // layer: recursive doubling across cube dimensions by hand, checked
    // against the one-call collective.
    let d = 3u32;
    let nodes = 1usize << d;
    let mpf = facility(nodes as u32);
    let cube = Topology::Hypercube { dim: d };

    let results = run_processes_collect(nodes, |pid| {
        let g = CommGroup::create(&mpf, pid, pid.index(), nodes, "cube").unwrap();
        let me = g.rank();

        // Hand-rolled recursive doubling along cube edges…
        let mut acc = (me + 1) as f64;
        for k in 0..d {
            let peer = me ^ (1 << k);
            assert!(cube.connected(me, peer), "dimension {k} edge missing");
            let theirs = g
                .exchange(peer, &acc.to_le_bytes(), peer)
                .expect("exchange");
            acc += f64::from_le_bytes(theirs.as_slice().try_into().expect("8 bytes"));
        }
        barrier(&g).unwrap();
        // …must agree with the collective.
        let collective = allreduce_sum_f64(&g, &[(me + 1) as f64]).unwrap()[0];
        (acc, collective)
    });

    let expected: f64 = (1..=nodes as f64 as usize).map(|v| v as f64).sum();
    for (hand, coll) in results {
        assert_eq!(hand, expected);
        assert_eq!(coll, expected);
    }
}

#[test]
fn mesh_halo_exchange_converges_like_jacobi() {
    // A 1-D 4-rank "mesh" (ring without wrap) averaging with neighbours:
    // after enough halo exchanges every rank holds the global mean.
    let ranks = 4;
    let mpf = facility(ranks as u32);
    let mesh = Topology::Mesh2D {
        width: ranks,
        height: 1,
    };

    let finals = run_processes_collect(ranks, |pid| {
        let g = CommGroup::create(&mpf, pid, pid.index(), ranks, "mesh").unwrap();
        let me = g.rank();
        let mut value = (me * 10) as f64;
        for _ in 0..200 {
            let neighbours = mesh.neighbors(me);
            // Send to all neighbours first (asynchronous), then collect.
            for &nb in &neighbours {
                g.send_to(nb, &value.to_le_bytes()).unwrap();
            }
            let mut sum = value;
            for &nb in &neighbours {
                let bytes = g.recv_from(nb).unwrap();
                sum += f64::from_le_bytes(bytes.as_slice().try_into().expect("8 bytes"));
            }
            value = sum / (neighbours.len() + 1) as f64;
        }
        value
    });

    let mean = (10 + 20 + 30) as f64 / 4.0;
    for v in finals {
        assert!(
            (v - mean).abs() < 1e-6,
            "diffusion should reach the mean, got {v}"
        );
    }
}

#[test]
fn alltoall_transpose() {
    // The classic use: transposing a distributed matrix of tags.
    let ranks = 5;
    let mpf = facility(ranks as u32);
    let rows = run_processes_collect(ranks, |pid| {
        let g = CommGroup::create(&mpf, pid, pid.index(), ranks, "a2a").unwrap();
        let me = g.rank();
        let chunks: Vec<Vec<u8>> = (0..ranks).map(|dst| vec![me as u8, dst as u8]).collect();
        alltoall(&g, &chunks).unwrap()
    });
    for (me, row) in rows.iter().enumerate() {
        for (src, cell) in row.iter().enumerate() {
            assert_eq!(
                cell,
                &vec![src as u8, me as u8],
                "transposed cell [{me}][{src}]"
            );
        }
    }
}

#[test]
fn broadcast_chain_across_groups() {
    // Group composition: a value broadcast in one group, reduced in
    // another (distinct tags are distinct conversation universes).
    let ranks = 4;
    let mpf = facility(ranks as u32);
    let results = run_processes_collect(ranks, |pid| {
        let a = CommGroup::create(&mpf, pid, pid.index(), ranks, "stage-a").unwrap();
        let b = CommGroup::create(&mpf, pid, pid.index(), ranks, "stage-b").unwrap();
        let seed = if a.rank() == 2 { 21.0f64 } else { 0.0 };
        let seeded = broadcast(&a, 2, &seed.to_le_bytes()).unwrap();
        let v = f64::from_le_bytes(seeded.as_slice().try_into().expect("8 bytes"));
        allreduce_sum_f64(&b, &[v]).unwrap()[0]
    });
    for v in results {
        assert_eq!(v, 21.0 * 4.0);
    }
}
